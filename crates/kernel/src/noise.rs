//! The OS-noise generator: daemons.
//!
//! The paper's noise taxonomy (after Ferreira et al. and the micro/macro
//! split of Gioiosa et al.): high-frequency short-duration noise (timer
//! ticks — modelled in the node's tick cost) and low-frequency
//! long-duration noise (kernel threads and user daemons — modelled here).
//! A [`DaemonSpec`] describes one daemon's sleep/work cycle; a
//! [`NoiseProfile`] is the population of a node. The default population
//! mirrors a 2010-era cluster-node Linux: per-CPU kernel threads
//! (`ksoftirqd/N`, `events/N`) plus global user daemons (syslog, cron,
//! monitoring collectors, ntpd, …), with heavy-tailed service times and a
//! periodic housekeeping *burst* (cron forking short-lived children) that
//! produces the rare catastrophic outliers in the paper's Table II
//! maxima.

use crate::program::{ProgCtx, Program, Step, TaskSpec};
use crate::task::Policy;
use hpl_sim::{SimDuration, SimTime};
use hpl_topology::{CpuId, CpuMask};
use std::collections::VecDeque;

/// Tag stamped on every task the noise generator creates (daemons and
/// their burst children). The node's observers use it to tell a
/// noise-daemon arrival apart from an application wakeup
/// ([`crate::observe::SchedEvent::NoiseArrival`]).
pub const NOISE_TAG: u32 = 0x4E5A; // "NZ"

/// A burst: with some probability per wake cycle, fork several short
/// CPU-burning children (log rotation, stat aggregation, compilation of
/// monitoring reports, …).
#[derive(Debug, Clone)]
pub struct BurstSpec {
    /// Probability of a burst per wake cycle.
    pub probability: f64,
    /// Range of children to fork (inclusive).
    pub children: (u32, u32),
    /// Range of each child's compute time.
    pub child_work: (SimDuration, SimDuration),
}

/// One daemon's behaviour.
#[derive(Debug, Clone)]
pub struct DaemonSpec {
    /// `comm` name.
    pub name: String,
    /// Pin to one CPU (kernel per-CPU threads) or float (user daemons).
    pub pinned: Option<CpuId>,
    /// Nice level (many kernel threads run at slight positive or negative
    /// nice; the scheduler's sleeper fairness makes this mostly moot —
    /// the paper's point).
    pub nice: i8,
    /// Mean sleep between activations (exponential jitter).
    pub period_mean: SimDuration,
    /// Log-normal service-time parameters (of the underlying normal, in
    /// ln-seconds).
    pub service_mu: f64,
    /// Log-normal sigma.
    pub service_sigma: f64,
    /// Hard cap on one activation's service time.
    pub service_max: SimDuration,
    /// Optional burst behaviour.
    pub burst: Option<BurstSpec>,
}

impl DaemonSpec {
    /// A simple periodic daemon with service times around `service`.
    pub fn periodic(
        name: impl Into<String>,
        period_mean: SimDuration,
        service: SimDuration,
    ) -> Self {
        // lognormal with mu = ln(service), sigma = 0.5: median = service,
        // occasional 2-4x outliers.
        DaemonSpec {
            name: name.into(),
            pinned: None,
            nice: 0,
            period_mean,
            service_mu: service.as_secs_f64().max(1e-9).ln(),
            service_sigma: 0.5,
            service_max: service * 20,
            burst: None,
        }
    }

    /// Pin to a CPU.
    pub fn pinned_to(mut self, cpu: CpuId) -> Self {
        self.pinned = Some(cpu);
        self
    }

    /// Set nice level.
    pub fn with_nice(mut self, nice: i8) -> Self {
        self.nice = nice;
        self
    }

    /// Add burst behaviour.
    pub fn with_burst(mut self, burst: BurstSpec) -> Self {
        self.burst = Some(burst);
        self
    }

    /// Build the task spec for this daemon.
    pub fn task_spec(&self, all_cpus: CpuMask) -> TaskSpec {
        let affinity = match self.pinned {
            Some(cpu) => CpuMask::single(cpu),
            None => all_cpus,
        };
        TaskSpec::new(
            self.name.clone(),
            Policy::Normal { nice: self.nice },
            Box::new(DaemonProgram::new(self.clone())),
        )
        .with_affinity(affinity)
        .with_tag(NOISE_TAG)
    }
}

/// The daemon program: sleep, (maybe burst), work, repeat.
pub struct DaemonProgram {
    spec: DaemonSpec,
    pending: VecDeque<Step>,
    started: bool,
}

impl DaemonProgram {
    /// Create from a spec.
    pub fn new(spec: DaemonSpec) -> Self {
        DaemonProgram {
            spec,
            pending: VecDeque::new(),
            started: false,
        }
    }

    fn sample_period(&self, ctx: &mut ProgCtx<'_>) -> SimDuration {
        let s = ctx.rng.exp(self.spec.period_mean.as_secs_f64());
        // Avoid both zero-length sleeps and absurd gaps.
        SimDuration::from_secs_f64(s.clamp(
            self.spec.period_mean.as_secs_f64() * 0.1,
            self.spec.period_mean.as_secs_f64() * 8.0,
        ))
    }

    fn sample_service(&self, ctx: &mut ProgCtx<'_>) -> SimDuration {
        let s = ctx
            .rng
            .lognormal(self.spec.service_mu, self.spec.service_sigma);
        SimDuration::from_secs_f64(s)
            .min(self.spec.service_max)
            .max(SimDuration::from_micros(1))
    }
}

impl Program for DaemonProgram {
    fn next_step(&mut self, ctx: &mut ProgCtx<'_>) -> Step {
        if let Some(step) = self.pending.pop_front() {
            return step;
        }
        if !self.started {
            self.started = true;
            // Random initial phase so daemons do not synchronise.
            let phase = ctx.rng.range_f64(0.0, self.spec.period_mean.as_secs_f64());
            return Step::Sleep(SimDuration::from_secs_f64(phase.max(1e-6)));
        }
        // One full cycle: (burst?) work, then sleep. Queue the tail.
        if let Some(burst) = &self.spec.burst {
            if ctx.rng.chance(burst.probability) {
                let n = ctx
                    .rng
                    .range_u64(burst.children.0 as u64, burst.children.1 as u64);
                for i in 0..n {
                    // Heavy-tailed child durations (bounded Pareto): most
                    // housekeeping jobs are short, the occasional one
                    // (updatedb, log compression) runs for seconds —
                    // the source of the catastrophic execution-time
                    // outliers in the paper's Table II maxima.
                    let w_s = ctx.rng.pareto_bounded(
                        1.1,
                        burst.child_work.0.as_secs_f64(),
                        burst.child_work.1.as_secs_f64(),
                    );
                    let w = SimDuration::from_secs_f64(w_s).as_nanos();
                    let child = TaskSpec::new(
                        format!("{}-job{i}", self.spec.name),
                        Policy::Normal {
                            nice: self.spec.nice,
                        },
                        crate::program::ScriptProgram::boxed(
                            "burst-child",
                            vec![Step::Compute(SimDuration::from_nanos(w))],
                        ),
                    )
                    .with_tag(NOISE_TAG);
                    self.pending.push_back(Step::Fork(child));
                }
            }
        }
        self.pending
            .push_back(Step::Compute(self.sample_service(ctx)));
        self.pending.push_back(Step::Sleep(self.sample_period(ctx)));
        self.pending.pop_front().expect("cycle queued")
    }

    fn describe(&self) -> &str {
        &self.spec.name
    }
}

/// Device-interrupt load: a Poisson stream of IRQs whose handlers steal
/// CPU time directly (they preempt *any* task, including HPC and RT —
/// the one noise channel a scheduling policy cannot hide; cf. Mann &
/// Mittal's interrupt-redirection work the paper discusses).
#[derive(Debug, Clone)]
pub struct IrqSpec {
    /// Mean interrupts per second (system-wide).
    pub rate_hz: f64,
    /// Handler cost per interrupt.
    pub cost: SimDuration,
    /// CPUs that service the interrupts (`/proc/irq/*/smp_affinity`);
    /// each IRQ lands on a uniformly random member. The default Linux
    /// configuration routes everything to cpu0.
    pub affinity: CpuMask,
}

/// A node's daemon population.
#[derive(Debug, Clone, Default)]
pub struct NoiseProfile {
    /// The daemons to start at boot.
    pub daemons: Vec<DaemonSpec>,
    /// Optional device-interrupt load.
    pub irq: Option<IrqSpec>,
}

impl NoiseProfile {
    /// No noise at all (unit tests, idealised baselines).
    pub fn quiet() -> Self {
        NoiseProfile {
            daemons: Vec::new(),
            irq: None,
        }
    }

    /// Attach a device-interrupt load.
    pub fn with_irq(mut self, irq: IrqSpec) -> Self {
        assert!(irq.rate_hz > 0.0 && !irq.affinity.is_empty());
        self.irq = Some(irq);
        self
    }

    /// The calibrated standard population for an `ncpus`-thread node.
    ///
    /// Per CPU: `ksoftirqd/N` and `events/N` kernel threads. Global:
    /// syslogd, rpciod, ntpd, irqbalance, a cluster-monitoring collector
    /// (`gmond`, the "statistics collectors" the paper names), hald, and
    /// crond with housekeeping bursts.
    pub fn standard(ncpus: u32) -> Self {
        let mut daemons = Vec::new();
        for c in 0..ncpus {
            daemons.push(
                DaemonSpec::periodic(
                    format!("ksoftirqd/{c}"),
                    SimDuration::from_millis(1200),
                    SimDuration::from_micros(25),
                )
                .pinned_to(CpuId(c)),
            );
            daemons.push(
                DaemonSpec::periodic(
                    format!("events/{c}"),
                    SimDuration::from_millis(900),
                    SimDuration::from_micros(60),
                )
                .pinned_to(CpuId(c)),
            );
            daemons.push(
                DaemonSpec::periodic(
                    format!("kworker/{c}"),
                    SimDuration::from_millis(1500),
                    SimDuration::from_micros(40),
                )
                .pinned_to(CpuId(c)),
            );
        }
        daemons.push(DaemonSpec::periodic(
            "syslogd",
            SimDuration::from_millis(900),
            SimDuration::from_micros(150),
        ));
        daemons.push(DaemonSpec::periodic(
            "rpciod",
            SimDuration::from_millis(2000),
            SimDuration::from_micros(90),
        ));
        daemons.push(DaemonSpec::periodic(
            "ntpd",
            SimDuration::from_secs(8),
            SimDuration::from_micros(120),
        ));
        daemons.push(DaemonSpec::periodic(
            "irqbalance",
            SimDuration::from_secs(10),
            SimDuration::from_micros(400),
        ));
        daemons.push(DaemonSpec::periodic(
            "gmond",
            SimDuration::from_millis(4000),
            SimDuration::from_millis(10),
        ));
        daemons.push(DaemonSpec::periodic(
            "pdflush",
            SimDuration::from_millis(5000),
            SimDuration::from_millis(8),
        ));
        daemons.push(DaemonSpec::periodic(
            "pbs_mom",
            SimDuration::from_millis(2500),
            SimDuration::from_millis(4),
        ));
        daemons.push(DaemonSpec::periodic(
            "hald",
            SimDuration::from_millis(2500),
            SimDuration::from_micros(200),
        ));
        daemons.push(DaemonSpec::periodic(
            "kjournald",
            SimDuration::from_secs(3),
            SimDuration::from_millis(4),
        ));
        daemons.push(
            DaemonSpec::periodic(
                "crond",
                SimDuration::from_secs(5),
                SimDuration::from_millis(1),
            )
            .with_burst(BurstSpec {
                probability: 0.5,
                children: (2, 6),
                child_work: (SimDuration::from_millis(40), SimDuration::from_secs(8)),
            }),
        );
        NoiseProfile { daemons, irq: None }
    }

    /// Scale activation frequency and service durations by `factor`
    /// (noise-injection sweeps; `factor = 0` disables everything).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor >= 0.0);
        if factor == 0.0 {
            return NoiseProfile::quiet();
        }
        let daemons = self
            .daemons
            .iter()
            .map(|d| {
                let mut d = d.clone();
                d.period_mean = d.period_mean.div_f64(factor);
                d.service_mu += factor.ln();
                d.service_max = d.service_max.mul_f64(factor);
                d
            })
            .collect();
        NoiseProfile {
            daemons,
            irq: self.irq.clone(),
        }
    }

    /// Task specs for the whole population.
    pub fn task_specs(&self, all_cpus: CpuMask) -> Vec<TaskSpec> {
        self.daemons.iter().map(|d| d.task_spec(all_cpus)).collect()
    }
}

/// Convenience: absolute time of first daemon activity is bounded by the
/// largest period, so harnesses can warm the node up before measuring.
pub fn warmup_bound(profile: &NoiseProfile) -> SimTime {
    let max = profile
        .daemons
        .iter()
        .map(|d| d.period_mean)
        .max()
        .unwrap_or(SimDuration::ZERO);
    SimTime::ZERO + max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Pid;
    use hpl_sim::Rng;

    fn step_of(p: &mut DaemonProgram, rng: &mut Rng) -> Step {
        let mut ctx = ProgCtx {
            pid: Pid(0),
            now: SimTime::ZERO,
            rng,
        };
        p.next_step(&mut ctx)
    }

    #[test]
    fn daemon_cycles_sleep_compute() {
        let spec = DaemonSpec::periodic(
            "d",
            SimDuration::from_millis(100),
            SimDuration::from_micros(50),
        );
        let mut p = DaemonProgram::new(spec);
        let mut rng = Rng::new(1);
        // Phase sleep first.
        assert!(matches!(step_of(&mut p, &mut rng), Step::Sleep(_)));
        for _ in 0..10 {
            assert!(matches!(step_of(&mut p, &mut rng), Step::Compute(_)));
            assert!(matches!(step_of(&mut p, &mut rng), Step::Sleep(_)));
        }
    }

    #[test]
    fn service_times_are_bounded() {
        let spec = DaemonSpec::periodic(
            "d",
            SimDuration::from_millis(100),
            SimDuration::from_micros(50),
        );
        let cap = spec.service_max;
        let mut p = DaemonProgram::new(spec);
        let mut rng = Rng::new(2);
        let _ = step_of(&mut p, &mut rng);
        for _ in 0..200 {
            if let Step::Compute(d) = step_of(&mut p, &mut rng) {
                assert!(d <= cap, "service {d} exceeds cap {cap}");
                assert!(d >= SimDuration::from_micros(1));
            }
        }
    }

    #[test]
    fn burst_forks_children() {
        let spec = DaemonSpec::periodic(
            "cron",
            SimDuration::from_millis(10),
            SimDuration::from_micros(50),
        )
        .with_burst(BurstSpec {
            probability: 1.0,
            children: (2, 2),
            child_work: (SimDuration::from_millis(1), SimDuration::from_millis(2)),
        });
        let mut p = DaemonProgram::new(spec);
        let mut rng = Rng::new(3);
        let _ = step_of(&mut p, &mut rng); // phase
        let mut forks = 0;
        for _ in 0..4 {
            match step_of(&mut p, &mut rng) {
                Step::Fork(_) => forks += 1,
                Step::Compute(_) | Step::Sleep(_) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(forks, 2);
    }

    #[test]
    fn standard_profile_population() {
        let p = NoiseProfile::standard(8);
        // 3 per-CPU threads x 8 + 10 globals.
        assert_eq!(p.daemons.len(), 34);
        let pinned = p.daemons.iter().filter(|d| d.pinned.is_some()).count();
        assert_eq!(pinned, 24);
        let specs = p.task_specs(CpuMask::first_n(8));
        assert_eq!(specs.len(), 34);
        // Pinned daemons have single-CPU affinity.
        let single = specs.iter().filter(|s| s.affinity.count() == 1).count();
        assert_eq!(single, 24);
    }

    #[test]
    fn quiet_profile_is_empty() {
        assert!(NoiseProfile::quiet().daemons.is_empty());
        assert_eq!(warmup_bound(&NoiseProfile::quiet()), SimTime::ZERO);
    }

    #[test]
    fn scaling_changes_period() {
        let p = NoiseProfile::standard(2);
        let scaled = p.scaled(2.0);
        assert_eq!(
            scaled.daemons[0].period_mean,
            p.daemons[0].period_mean.div_f64(2.0)
        );
        assert!(scaled.scaled(0.0).daemons.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = DaemonSpec::periodic(
            "d",
            SimDuration::from_millis(100),
            SimDuration::from_micros(50),
        );
        let mut p1 = DaemonProgram::new(spec.clone());
        let mut p2 = DaemonProgram::new(spec);
        let mut r1 = Rng::new(9);
        let mut r2 = Rng::new(9);
        for _ in 0..50 {
            let (s1, s2) = (step_of(&mut p1, &mut r1), step_of(&mut p2, &mut r2));
            match (s1, s2) {
                (Step::Sleep(a), Step::Sleep(b)) => assert_eq!(a, b),
                (Step::Compute(a), Step::Compute(b)) => assert_eq!(a, b),
                (Step::Fork(_), Step::Fork(_)) => {}
                other => panic!("diverged: {other:?}"),
            }
        }
    }
}
