//! The simulated node: Scheduler Core + event loop.
//!
//! [`Node`] owns everything one cluster node has: the task table, the
//! ordered scheduling-class list, per-CPU state, the cache model, the
//! sync substrate, the perf counters and the event queue. All state
//! transitions — switching, blocking, waking, forking, migrating —
//! funnel through this module, so every `perf` counter is bumped in
//! exactly one place, mirroring how the real scheduler centralises its
//! statistics in `__schedule()` / `set_task_cpu()`.
//!
//! ## Execution-speed model
//!
//! A running task's instantaneous speed is
//! `smt_factor(sibling busy) × (cold + (1−cold)·warmth(t))` where warmth
//! follows the exponential rewarming of [`crate::cache`]. Work progress
//! over an interval is integrated analytically, and segment-completion
//! events are scheduled by inverting that integral (Newton), so no
//! precision is lost to time stepping; the timer tick merely adds its
//! handler cost and drives CFS accounting and periodic balancing, as in
//! the real kernel.

use crate::balance::BalanceClock;
use crate::cache::CacheModel;
use crate::cfs::CfsClass;
use crate::class::{class_of_policy, ClassKind, LoadSnapshot, MigrationPlan, SchedClass, SchedCtx};
use crate::config::{BalanceMode, KernelConfig};
use crate::idle::IdleClass;
use crate::noise::{NoiseProfile, NOISE_TAG};
use crate::observe::{
    BalanceKind, DeactivateReason, MigrateReason, ObserverId, PreemptVerdict, RingSink, SchedEvent,
    SchedObserver, TickOutcome,
};
use crate::program::{ProgCtx, Step, TaskSpec};
use crate::rt::RtClass;
use crate::sync::{ChanId, SyncState, WaitOutcome, Waiting};
use crate::task::{BlockReason, Pid, SpinTarget, Task, TaskState, TaskTable};
use crate::trace::TraceBuffer;
use hpl_perf::{HwEvent, PerCpuCounters, RunOutcome, SwEvent};
use hpl_sim::{EventQueue, Rng, SimDuration, SimTime};
use hpl_topology::{CpuId, CpuMask, DomainHierarchy, Topology};

// `Clone` because periodic timer-wheel slots re-arm by cloning their
// payload on every pop (all variants are tiny Copy-able data).
#[derive(Debug, Clone)]
enum Ev {
    Tick(CpuId),
    SegDone {
        cpu: CpuId,
        gen: u64,
    },
    TimerWake(Pid),
    Irq,
    /// A gang-rotation epoch boundary: re-derive the active gang from
    /// the virtual clock and ask gang-aware classes to reschedule.
    /// Armed only while [`KernelConfig::gang_epoch`] is set and two or
    /// more gangs are enrolled.
    GangEpoch,
    /// A cross-node message arriving from the cluster interconnect:
    /// deposit `tokens` on `chan` at this event's time. `sent_at` and
    /// `queued_ns` ride along purely for observability (latency
    /// breakdown); delivery semantics are exactly a local notify.
    NetDeliver {
        chan: ChanId,
        tokens: u32,
        sent_at: SimTime,
        queued_ns: u64,
    },
}

/// A captured outbound cross-node message: a [`Step::NetSend`] executed
/// on a channel registered via [`Node::register_net_channel`]. The
/// cluster driver collects these with [`Node::take_outbound`], runs them
/// through its interconnect model, and posts the resulting delivery on
/// the destination node with [`Node::post_net_delivery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetMsg {
    /// Send time (the sender executed the step at this instant).
    pub at: SimTime,
    /// Destination channel (lives on the destination node).
    pub chan: ChanId,
    /// Tokens to deposit on delivery.
    pub tokens: u32,
    /// Payload size for the interconnect's alpha/beta cost model.
    pub bytes: u64,
}

#[derive(Debug)]
struct CpuState {
    curr: Option<Pid>,
    last_update: SimTime,
    seg_gen: u64,
    pending_overhead: SimDuration,
}

/// Builder for a [`Node`].
pub struct NodeBuilder {
    topo: Topology,
    cfg: KernelConfig,
    noise: NoiseProfile,
    hpc_class: Option<Box<dyn SchedClass>>,
    seed: u64,
}

fn exp_interval(rate_hz: f64, rng: &mut Rng) -> SimDuration {
    SimDuration::from_secs_f64(rng.exp(1.0 / rate_hz).max(1e-7))
}

impl NodeBuilder {
    /// Start from a topology.
    pub fn new(topo: Topology) -> Self {
        NodeBuilder {
            topo,
            cfg: KernelConfig::default(),
            noise: NoiseProfile::quiet(),
            hpc_class: None,
            seed: 0,
        }
    }

    /// Set the kernel configuration.
    pub fn with_config(mut self, cfg: KernelConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Set the daemon population.
    pub fn with_noise(mut self, noise: NoiseProfile) -> Self {
        self.noise = noise;
        self
    }

    /// Register an HPC scheduling class between RT and CFS (the paper's
    /// HPL class from the `hpl-core` crate, or any other implementation).
    pub fn with_hpc_class(mut self, class: Box<dyn SchedClass>) -> Self {
        assert_eq!(class.kind(), ClassKind::Hpc, "hpc_class must have kind Hpc");
        self.hpc_class = Some(class);
        self
    }

    /// Seed the node's RNG stream.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Boot the node: builds domains, registers classes, starts the
    /// daemon population and the per-CPU timer ticks.
    pub fn build(self) -> Node {
        self.cfg.validate().expect("invalid kernel config");
        let domains = DomainHierarchy::build(&self.topo);
        let ncpus = self.topo.total_cpus() as usize;
        let mut classes: Vec<Box<dyn SchedClass>> = Vec::new();
        classes.push(Box::new(RtClass::new()));
        if let Some(hpc) = self.hpc_class {
            classes.push(hpc);
        }
        classes.push(Box::new(CfsClass::new()));
        classes.push(Box::new(IdleClass::new()));
        for c in classes.iter_mut() {
            c.init(ncpus);
        }
        let balance_clock = BalanceClock::new(&domains);
        let initial_shares: std::collections::BTreeMap<u64, u32> =
            self.cfg.gang_shares.iter().copied().collect();
        let mut node = Node {
            cache: CacheModel::new(&self.topo),
            counters: PerCpuCounters::new(ncpus),
            cpus: (0..ncpus)
                .map(|_| CpuState {
                    curr: None,
                    last_update: SimTime::ZERO,
                    seg_gen: 0,
                    pending_overhead: SimDuration::ZERO,
                })
                .collect(),
            queue: EventQueue::new(),
            rng: Rng::new(self.seed),
            sync: SyncState::new(),
            tasks: TaskTable::new(),
            balance_clock,
            classes,
            cfg: self.cfg,
            domains,
            topo: self.topo,
            resched: vec![false; ncpus],
            recomp: vec![false; ncpus],
            advancing: Vec::new(),
            observers: Vec::new(),
            ring: None,
            irq: self.noise.irq.clone(),
            load: LoadSnapshot::empty(ncpus),
            plan_buf: Vec::new(),
            tick_slots: Vec::new(),
            ff_horizons: vec![SimTime::ZERO; ncpus],
            ff_fired: vec![0; ncpus],
            ff_start: vec![SimTime::ZERO; ncpus],
            net_external: std::collections::HashSet::new(),
            outbound: Vec::new(),
            gang_refs: std::collections::BTreeMap::new(),
            gang_active: None,
            gang_armed: None,
            gang_shares: initial_shares,
            gang_slice_mark: None,
            events: 0,
        };
        // Stagger per-CPU ticks across the tick period. The fast path
        // routes them through the queue's periodic timer-wheel slots;
        // the reference path schedules plain events that the tick
        // handler re-arms. Both allocate sequence numbers in the same
        // order, so the two paths produce identical event streams.
        let period = node.cfg.tick_period;
        for c in 0..ncpus as u32 {
            let offset = SimDuration::from_nanos(period.as_nanos() * (c as u64) / ncpus as u64);
            let first = SimTime::ZERO + period + offset;
            if node.cfg.fast_event_loop {
                let id = node
                    .queue
                    .schedule_periodic(first, period, Ev::Tick(CpuId(c)));
                debug_assert_eq!(id.index(), c as usize);
                node.tick_slots.push(id);
            } else {
                node.queue.schedule(first, Ev::Tick(CpuId(c)));
            }
        }
        // Boot the daemon population.
        let all = node.topo.all_cpus();
        for spec in self.noise.task_specs(all) {
            node.spawn(spec);
        }
        // Arm the interrupt stream, if configured.
        if let Some(irq) = node.irq.clone() {
            let first = exp_interval(irq.rate_hz, &mut node.rng);
            node.queue.schedule(SimTime::ZERO + first, Ev::Irq);
        }
        node
    }
}

/// A snapshot of one task's scheduler-visible statistics
/// (`/proc/<pid>/sched` flavoured).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskReport {
    /// Process id.
    pub pid: Pid,
    /// `comm` name.
    pub name: String,
    /// Scheduling policy.
    pub policy: crate::task::Policy,
    /// Lifecycle state at snapshot time.
    pub state: TaskState,
    /// CPU last assigned.
    pub cpu: CpuId,
    /// Productive CPU time consumed.
    pub total_runtime: SimDuration,
    /// Times switched in.
    pub nr_switches: u64,
    /// Times migrated.
    pub nr_migrations: u64,
    /// Exit time if dead.
    pub exited_at: Option<SimTime>,
}

impl std::fmt::Display for TaskReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}) {:?} cpu{} runtime={} switches={} migrations={}",
            self.pid,
            self.name,
            self.state,
            self.cpu.0,
            self.total_runtime,
            self.nr_switches,
            self.nr_migrations
        )
    }
}

/// One simulated cluster node.
pub struct Node {
    /// Kernel tunables.
    pub cfg: KernelConfig,
    /// Machine topology.
    pub topo: Topology,
    /// Scheduling domains.
    pub domains: DomainHierarchy,
    /// All tasks ever created.
    pub tasks: TaskTable,
    /// Perf counters (per CPU).
    pub counters: PerCpuCounters,
    /// Synchronisation substrate.
    pub sync: SyncState,
    queue: EventQueue<Ev>,
    classes: Vec<Box<dyn SchedClass>>,
    cpus: Vec<CpuState>,
    cache: CacheModel,
    balance_clock: BalanceClock,
    rng: Rng,
    resched: Vec<bool>,
    recomp: Vec<bool>,
    /// Guard against re-entrant program advancement per pid.
    advancing: Vec<Pid>,
    /// Attached observability sinks. Observers receive copies of
    /// decision data and never touch scheduler state, so attaching one
    /// cannot change the simulation; with the vec empty every decision
    /// point reduces to a single is-empty branch.
    observers: Vec<Box<dyn SchedObserver>>,
    /// The sink [`Self::enable_trace`] attached, for [`Self::trace`].
    ring: Option<ObserverId>,
    irq: Option<crate::noise::IrqSpec>,
    /// Incrementally maintained cross-CPU load view handed to class
    /// hooks (debug builds re-derive and compare in `drain`).
    load: LoadSnapshot,
    /// Reused buffer for balance-hook migration plans.
    plan_buf: Vec<MigrationPlan>,
    /// Timer-wheel slot per CPU (`fast_event_loop` only; slot i == cpu i).
    tick_slots: Vec<hpl_sim::PeriodicId>,
    /// Scratch for `fast_forward` (per-slot horizons / fire counts /
    /// pre-batch tick times for all-idle balance replay).
    ff_horizons: Vec<SimTime>,
    ff_fired: Vec<u64>,
    ff_start: Vec<SimTime>,
    /// Channels registered as network endpoints: a [`Step::NetSend`] on
    /// one of these is captured into `outbound` instead of notifying
    /// locally.
    net_external: std::collections::HashSet<ChanId>,
    /// Captured outbound messages awaiting cluster routing.
    outbound: Vec<NetMsg>,
    /// Live gang membership (gang id → enrolled live tasks). `BTreeMap`
    /// so the rotation order is the sorted gang-id order — a pure
    /// function of the co-resident set, identical on every node that
    /// hosts the same gangs.
    gang_refs: std::collections::BTreeMap<u64, u32>,
    /// Gang currently allowed to run (`None` = no rotation in force).
    gang_active: Option<u64>,
    /// Earliest pending [`Ev::GangEpoch`] time in ns, `None` when no
    /// epoch event is armed. Weighted slicing may leave later stale
    /// events in the heap after a share change; they recompute
    /// harmlessly.
    gang_armed: Option<u64>,
    /// Milli-CPU share per gang (see [`Self::gang_set_share`]). Empty
    /// means unweighted: the legacy equal-epoch rotation code path runs
    /// and the node is byte-identical to a build without shares.
    gang_shares: std::collections::BTreeMap<u64, u32>,
    /// Last `(gang, boundary)` published as a [`SchedEvent::GangSlice`]
    /// — dedups re-emission when `gang_recompute` runs mid-slice.
    /// Observer bookkeeping only; never read by scheduling decisions.
    gang_slice_mark: Option<(u64, u64)>,
    /// Events processed (dispatched + batch-fired ticks).
    events: u64,
}

impl Node {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The CPU's current task, if any.
    pub fn current(&self, cpu: CpuId) -> Option<Pid> {
        self.cpus[cpu.index()].curr
    }

    /// Attach an observability sink. It stays attached for the node's
    /// lifetime and receives every scheduling decision from now on; the
    /// returned id retrieves it through [`Self::observer`].
    pub fn attach_observer(&mut self, obs: Box<dyn SchedObserver>) -> ObserverId {
        self.observers.push(obs);
        ObserverId::new(self.observers.len() - 1)
    }

    /// True iff at least one sink is attached (decision points publish
    /// only then).
    pub fn has_observers(&self) -> bool {
        !self.observers.is_empty()
    }

    /// Downcast an attached observer to its concrete sink type.
    pub fn observer<T: SchedObserver>(&self, id: ObserverId) -> Option<&T> {
        self.observers
            .get(id.index())
            .and_then(|o| o.as_any().downcast_ref::<T>())
    }

    /// Mutable variant of [`Self::observer`].
    pub fn observer_mut<T: SchedObserver>(&mut self, id: ObserverId) -> Option<&mut T> {
        self.observers
            .get_mut(id.index())
            .and_then(|o| o.as_any_mut().downcast_mut::<T>())
    }

    /// Publish one decision to every attached sink. Callers pre-check
    /// [`Self::has_observers`] so the disabled path never constructs the
    /// event; this fans out only when someone is listening.
    #[inline]
    fn emit(&mut self, ev: SchedEvent) {
        let now = self.queue.now();
        for obs in self.observers.iter_mut() {
            obs.observe(now, &ev);
        }
    }

    /// Publish an externally-sourced event to this node's sinks, stamped
    /// with the node's current time. This is how layers *above* the
    /// kernel (the cluster driver, the `hpl-batch` scheduler) thread
    /// their decisions — job submits/starts/ends, queue depths — into
    /// the same observer stream as the kernel's own, so a single Chrome
    /// trace shows both scheduling levels. Observers are pure sinks, so
    /// publishing cannot perturb the simulation.
    pub fn publish(&mut self, ev: SchedEvent) {
        if self.has_observers() {
            self.emit(ev);
        }
    }

    /// Start recording scheduler events (switches, migrations, wakeups)
    /// into a bounded buffer — attaches a [`RingSink`]. Cheap enough for
    /// examples and debugging; leave off for bulk experiments.
    pub fn enable_trace(&mut self, capacity: usize) {
        let id = self.attach_observer(Box::new(RingSink::new(capacity)));
        self.ring = Some(id);
    }

    /// The trace recorded so far, if [`Self::enable_trace`] was called.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.ring
            .and_then(|id| self.observer::<RingSink>(id))
            .map(|s| s.buffer())
    }

    /// Render the Chrome-trace JSON of the [`crate::observe::ChromeTraceSink`]
    /// behind `id`, closing open occupancy slices at the current time and
    /// resolving task names from the task table. `None` if `id` is not a
    /// Chrome-trace sink.
    pub fn export_chrome_trace(&self, id: ObserverId) -> Option<String> {
        let sink = self.observer::<crate::observe::ChromeTraceSink>(id)?;
        Some(sink.to_json(self.now(), |pid| {
            format!("{} {}", self.tasks.get(pid).name, pid)
        }))
    }

    /// Per-task statistics in the shape of `perf stat -p <pid>` plus
    /// `/proc/<pid>/sched`: runtime, switch and migration counts.
    pub fn task_report(&self, pid: Pid) -> TaskReport {
        let t = self.tasks.get(pid);
        TaskReport {
            pid,
            name: t.name.clone(),
            policy: t.policy,
            state: t.state,
            cpu: t.cpu,
            total_runtime: t.total_runtime,
            nr_switches: t.nr_switches,
            nr_migrations: t.nr_migrations,
            exited_at: t.exited_at,
        }
    }

    /// Index into the class list for a policy. Panics if no registered
    /// class accepts the policy (e.g. `SCHED_HPC` without an HPC class).
    fn class_idx(&self, task: &Task) -> usize {
        let kind = class_of_policy(task.policy);
        self.classes
            .iter()
            .position(|c| c.kind() == kind)
            .unwrap_or_else(|| panic!("no scheduling class registered for {:?}", task.policy))
    }

    /// Whether a policy can be used on this node.
    pub fn supports_policy(&self, policy: crate::task::Policy) -> bool {
        let kind = class_of_policy(policy);
        self.classes.iter().any(|c| c.kind() == kind)
    }

    fn sched_ctx<'a>(
        cfg: &'a KernelConfig,
        topo: &'a Topology,
        domains: &'a DomainHierarchy,
        now: SimTime,
    ) -> SchedCtx<'a> {
        SchedCtx {
            now,
            cfg,
            topo,
            domains,
        }
    }

    /// Rebuild the load view from scratch (O(cpus × classes)). The hot
    /// path maintains `self.load` incrementally instead; this is the
    /// ground truth that debug builds check it against.
    #[cfg(debug_assertions)]
    fn snapshot_rebuild(&self) -> LoadSnapshot {
        let n = self.cpus.len();
        let mut snap = LoadSnapshot::empty(n);
        for i in 0..n {
            let cpu = CpuId(i as u32);
            let mut count = 0;
            for c in &self.classes {
                count += c.nr_queued(cpu);
            }
            if let Some(pid) = self.cpus[i].curr {
                count += 1;
                let t = self.tasks.get(pid);
                snap.curr_kind[i] = Some(class_of_policy(t.policy));
                snap.curr_rt_prio[i] = t.policy.rt_prio().unwrap_or(0);
            }
            snap.nr_running[i] = count;
        }
        snap
    }

    #[cfg(debug_assertions)]
    fn assert_load_consistent(&self) {
        debug_assert_eq!(
            self.load,
            self.snapshot_rebuild(),
            "incremental LoadSnapshot diverged from rebuild"
        );
    }

    /// Install `new` as the CPU's current task, keeping the incremental
    /// load view in sync (the curr slot contributes one to `nr_running`
    /// and defines `curr_kind`/`curr_rt_prio`). Every assignment to
    /// `cpus[_].curr` after boot must go through here.
    fn set_curr(&mut self, cpu: CpuId, new: Option<Pid>) {
        let idx = cpu.index();
        if self.cpus[idx].curr.is_some() {
            self.load.nr_running[idx] -= 1;
        }
        self.cpus[idx].curr = new;
        match new {
            Some(pid) => {
                self.load.nr_running[idx] += 1;
                let t = self.tasks.get(pid);
                self.load.curr_kind[idx] = Some(class_of_policy(t.policy));
                self.load.curr_rt_prio[idx] = t.policy.rt_prio().unwrap_or(0);
            }
            None => {
                self.load.curr_kind[idx] = None;
                self.load.curr_rt_prio[idx] = 0;
            }
        }
    }

    // ---------------------------------------------------------------
    // Execution-speed model
    // ---------------------------------------------------------------

    fn sibling_busy(&self, cpu: CpuId) -> bool {
        self.topo
            .smt_siblings(cpu)
            .iter()
            .any(|sib| sib != cpu && self.cpus[sib.index()].curr.is_some())
    }

    fn smt_factor(&self, cpu: CpuId) -> f64 {
        if self.sibling_busy(cpu) {
            self.cfg.smt_busy_factor
        } else {
            1.0
        }
    }

    /// Full-speed work (seconds) done over `dt_s` starting from warmth
    /// `w0`, given the SMT factor. Closed form of
    /// `∫ smt·(cold + (1−cold)·w(t)) dt` with exponential rewarming.
    fn work_integral(&self, smt: f64, w0: f64, dt_s: f64) -> f64 {
        let cold = self.cfg.cache_cold_factor;
        let tau = self.cfg.cache_warm_tau.as_secs_f64();
        smt * (dt_s - (1.0 - cold) * (1.0 - w0) * tau * (1.0 - (-dt_s / tau).exp()))
    }

    /// Inverse of [`Self::work_integral`]: wall time needed to complete
    /// `work_s` of full-speed work. Newton iteration with a bisection
    /// floor; the integrand is positive and increasing so this converges
    /// in a handful of steps.
    fn time_for_work(&self, smt: f64, w0: f64, work_s: f64) -> f64 {
        let cold = self.cfg.cache_cold_factor;
        let tau = self.cfg.cache_warm_tau.as_secs_f64();
        debug_assert!(work_s >= 0.0);
        if work_s <= 0.0 {
            return 0.0;
        }
        // Start from the optimistic bound (full speed).
        let mut t = work_s / smt;
        for _ in 0..32 {
            let f = self.work_integral(smt, w0, t) - work_s;
            let speed = smt * (1.0 - (1.0 - cold) * (1.0 - w0) * (-t / tau).exp());
            let step = f / speed.max(1e-12);
            t -= step;
            if step.abs() < 0.5e-9 {
                break;
            }
        }
        t.max(0.0)
    }

    /// Settle a CPU's accounting up to `now`: apply progress to the
    /// current task, charge overheads, and update the cache model.
    fn sync_cpu(&mut self, cpu: CpuId, now: SimTime) {
        let idx = cpu.index();
        let last = self.cpus[idx].last_update;
        if now <= last {
            return;
        }
        let elapsed = now - last;
        self.cpus[idx].last_update = now;
        let Some(pid) = self.cpus[idx].curr else {
            // Idle CPU: overheads are absorbed invisibly.
            self.cpus[idx].pending_overhead = SimDuration::ZERO;
            return;
        };
        // Overhead (tick handlers, switch costs) eats wall time first.
        let overhead = self.cpus[idx].pending_overhead.min(elapsed);
        self.cpus[idx].pending_overhead -= overhead;
        let productive = elapsed - overhead;
        if productive.is_zero() {
            return;
        }
        let smt = self.smt_factor(cpu);
        let w0 = self.cache.warmth(&self.topo, cpu, pid);
        let dt_s = productive.as_secs_f64();
        let work_s = self.work_integral(smt, w0, dt_s);
        let work_ns = (work_s * 1e9).round() as u64;
        // Counter attribution: lost cycles split between SMT contention
        // and cold-cache stall.
        let ideal_ns = productive.as_nanos();
        let smt_progress_ns = ((dt_s * smt * 1e9).round() as u64).min(ideal_ns);
        let smt_loss = ideal_ns - smt_progress_ns;
        let cache_loss = ideal_ns.saturating_sub(work_ns).saturating_sub(smt_loss);
        self.counters.add_hw(cpu, HwEvent::BusyNs, ideal_ns);
        self.counters
            .add_hw(cpu, HwEvent::SmtContentionNs, smt_loss);
        self.counters
            .add_hw(cpu, HwEvent::ColdCacheStallNs, cache_loss);

        let task = self.tasks.get_mut(pid);
        task.segment_remaining = task.segment_remaining.saturating_sub(work_ns);
        task.ran_since_pick += productive;
        task.total_runtime += productive;
        let ci = self.class_idx(self.tasks.get(pid));
        // update_curr needs &mut task and &mut class simultaneously:
        // split borrows via direct field access.
        let (classes, tasks) = (&mut self.classes, &mut self.tasks);
        classes[ci].update_curr(cpu, tasks.get_mut(pid), productive);
        self.cache
            .run_for(&self.cfg, &self.topo, cpu, pid, productive);
    }

    /// Re-estimate and schedule the segment-completion event of `cpu`.
    fn schedule_completion(&mut self, cpu: CpuId) {
        let idx = cpu.index();
        self.cpus[idx].seg_gen += 1;
        let gen = self.cpus[idx].seg_gen;
        let Some(pid) = self.cpus[idx].curr else {
            return;
        };
        let remaining = self.tasks.get(pid).segment_remaining;
        if remaining == 0 {
            // The segment completed during accounting (e.g. a tick synced
            // right past the estimated completion); fire immediately so
            // the program advances.
            self.queue.schedule(self.now(), Ev::SegDone { cpu, gen });
            return;
        }
        let smt = self.smt_factor(cpu);
        let w0 = self.cache.warmth(&self.topo, cpu, pid);
        let mut dt_s = self.time_for_work(smt, w0, remaining as f64 / 1e9);
        // Pending overheads delay completion by exactly their length.
        dt_s += self.cpus[idx].pending_overhead.as_secs_f64();
        let dt = SimDuration::from_secs_f64(dt_s).max(SimDuration::from_nanos(1));
        self.queue
            .schedule(self.now() + dt, Ev::SegDone { cpu, gen });
    }

    // ---------------------------------------------------------------
    // State transitions
    // ---------------------------------------------------------------

    fn set_task_cpu(&mut self, pid: Pid, to: CpuId, reason: MigrateReason) {
        let from = self.tasks.get(pid).cpu;
        if from == to {
            return;
        }
        self.cache.migrate(&self.cfg, &self.topo, pid, from, to);
        let task = self.tasks.get_mut(pid);
        task.cpu = to;
        // Fork placement of a never-run task is not a migration in
        // perf's accounting... except that the paper explicitly counts
        // "one migration for each MPI task as it is created", matching
        // perf's sched:sched_migrate_task tracepoint which fires in
        // set_task_cpu() during fork placement. We follow the paper.
        task.nr_migrations += 1;
        self.counters.add_sw(to, SwEvent::CpuMigrations, 1);
        if !self.observers.is_empty() {
            self.emit(SchedEvent::Migrate {
                pid,
                from,
                to,
                reason,
            });
        }
        if reason == MigrateReason::Balance {
            self.counters.add_sw(to, SwEvent::LoadBalanceMigrations, 1);
            // The migration thread runs briefly on both CPUs.
            self.cpus[from.index()].pending_overhead += self.cfg.migration_cost;
            self.cpus[to.index()].pending_overhead += self.cfg.migration_cost;
            self.counters.add_hw(
                to,
                HwEvent::CtxSwitchOverheadNs,
                self.cfg.migration_cost.as_nanos(),
            );
        }
    }

    fn enqueue_task(&mut self, cpu: CpuId, pid: Pid, wakeup: bool) {
        let ci = self.class_idx(self.tasks.get(pid));
        let now = self.now();
        let (classes, tasks, cfg, topo, domains) = (
            &mut self.classes,
            &mut self.tasks,
            &self.cfg,
            &self.topo,
            &self.domains,
        );
        let ctx = Self::sched_ctx(cfg, topo, domains, now);
        classes[ci].enqueue(cpu, tasks.get_mut(pid), &ctx, wakeup);
        self.load.nr_running[cpu.index()] += 1;
    }

    fn dequeue_task(&mut self, cpu: CpuId, pid: Pid) {
        let ci = self.class_idx(self.tasks.get(pid));
        let now = self.now();
        let (classes, tasks, cfg, topo, domains) = (
            &mut self.classes,
            &mut self.tasks,
            &self.cfg,
            &self.topo,
            &self.domains,
        );
        let ctx = Self::sched_ctx(cfg, topo, domains, now);
        classes[ci].dequeue(cpu, tasks.get_mut(pid), &ctx);
        self.load.nr_running[cpu.index()] -= 1;
    }

    /// Preemption check after `woken` was enqueued on `cpu`.
    fn check_preempt(&mut self, cpu: CpuId, woken: Pid) {
        let curr = self.cpus[cpu.index()].curr;
        let verdict = match curr {
            None => PreemptVerdict::IdleCpu,
            Some(curr) => {
                let ci_w = self.class_idx(self.tasks.get(woken));
                let ci_c = self.class_idx(self.tasks.get(curr));
                match ci_w.cmp(&ci_c) {
                    std::cmp::Ordering::Less => PreemptVerdict::HigherClass,
                    std::cmp::Ordering::Greater => PreemptVerdict::LowerClass,
                    std::cmp::Ordering::Equal => {
                        let now = self.now();
                        let ctx = Self::sched_ctx(&self.cfg, &self.topo, &self.domains, now);
                        if self.classes[ci_w].wakeup_preempt(
                            cpu,
                            self.tasks.get(curr),
                            self.tasks.get(woken),
                            &ctx,
                        ) {
                            PreemptVerdict::Granted
                        } else {
                            PreemptVerdict::Denied
                        }
                    }
                }
            }
        };
        if verdict.preempts() {
            self.resched[cpu.index()] = true;
        }
        if !self.observers.is_empty() {
            self.emit(SchedEvent::PreemptCheck {
                cpu,
                curr,
                woken,
                verdict,
            });
        }
    }

    /// Wake a blocked task: placement, enqueue, preemption, RT push.
    fn wake_task(&mut self, pid: Pid) {
        let state = self.tasks.get(pid).state;
        if !matches!(state, TaskState::Blocked(_)) {
            return; // stale timer, task died, or already woken
        }
        let now = self.now();
        {
            let t = self.tasks.get_mut(pid);
            t.state = TaskState::Runnable;
            t.last_wakeup = now;
        }
        let ci = self.class_idx(self.tasks.get(pid));
        let target = {
            let (classes, tasks, cfg, topo, domains, load) = (
                &mut self.classes,
                &self.tasks,
                &self.cfg,
                &self.topo,
                &self.domains,
                &self.load,
            );
            let ctx = Self::sched_ctx(cfg, topo, domains, now);
            classes[ci].select_cpu_wakeup(tasks.get(pid), &ctx, load, tasks)
        };
        if std::env::var_os("HPL_TRACE_WAKE").is_some() {
            eprintln!(
                "[{}] wake {} ({}) prev=cpu{} -> cpu{} nr_running={:?}",
                self.now(),
                pid,
                self.tasks.get(pid).name,
                self.tasks.get(pid).cpu.0,
                target.0,
                self.load.nr_running
            );
        }
        self.counters.add_sw(target, SwEvent::Wakeups, 1);
        if !self.observers.is_empty() {
            self.emit(SchedEvent::Wakeup { pid, cpu: target });
            if self.tasks.get(pid).tag == Some(NOISE_TAG) {
                self.emit(SchedEvent::NoiseArrival { pid, cpu: target });
            }
        }
        self.set_task_cpu(pid, target, MigrateReason::Wakeup);
        self.enqueue_task(target, pid, true);
        self.check_preempt(target, pid);
        // RT overload push.
        if self.cfg.balance == BalanceMode::Full && self.classes[ci].kind() == ClassKind::RealTime {
            let mut plans = std::mem::take(&mut self.plan_buf);
            plans.clear();
            {
                let (classes, tasks, cfg, topo, domains, load) = (
                    &mut self.classes,
                    &self.tasks,
                    &self.cfg,
                    &self.topo,
                    &self.domains,
                    &self.load,
                );
                let ctx = Self::sched_ctx(cfg, topo, domains, now);
                classes[ci].push_overload(target, &ctx, load, tasks, &mut plans);
            }
            let applied = self.apply_migrations(&plans);
            if !self.observers.is_empty() {
                self.emit(SchedEvent::Balance {
                    cpu: target,
                    kind: BalanceKind::RtPush,
                    migrations: applied,
                });
            }
            plans.clear();
            self.plan_buf = plans;
        }
    }

    /// Apply balance-produced migrations after validation.
    fn apply_migrations(&mut self, plans: &[MigrationPlan]) -> u32 {
        let mut applied = 0;
        for &plan in plans {
            let t = self.tasks.get(plan.pid);
            let running_here = t.state == TaskState::Running
                && self.cpus[plan.from.index()].curr == Some(plan.pid);
            let queued_here = t.state == TaskState::Runnable
                && t.cpu == plan.from
                && self.cpus[plan.from.index()].curr != Some(plan.pid);
            if !(queued_here || (plan.active && running_here))
                || !t.can_run_on(plan.to)
                || plan.from == plan.to
            {
                continue;
            }
            if running_here {
                // Active balance: the migration thread preempts the
                // running task and carries it over — a forced context
                // switch on the source CPU.
                let now = self.now();
                self.sync_cpu(plan.from, now);
                let t = self.tasks.get_mut(plan.pid);
                t.state = TaskState::Runnable;
                t.last_descheduled = now;
                self.set_curr(plan.from, None);
                self.counters.add_sw(plan.from, SwEvent::ContextSwitches, 1);
                self.counters
                    .add_sw(plan.from, SwEvent::InvoluntaryPreemptions, 1);
                self.resched[plan.from.index()] = true;
                // Running tasks are not in any class queue: skip dequeue.
                self.set_task_cpu(plan.pid, plan.to, MigrateReason::Balance);
                self.tasks.get_mut(plan.pid).last_wakeup = self.now();
                self.enqueue_task(plan.to, plan.pid, false);
                self.check_preempt(plan.to, plan.pid);
                self.recomp[plan.from.index()] = true;
                self.recomp[plan.to.index()] = true;
                applied += 1;
                continue;
            }
            self.dequeue_task(plan.from, plan.pid);
            self.set_task_cpu(plan.pid, plan.to, MigrateReason::Balance);
            // A freshly moved task restarts its sustained-wait clock, so
            // competing balance passes do not ping-pong it.
            self.tasks.get_mut(plan.pid).last_wakeup = self.now();
            self.enqueue_task(plan.to, plan.pid, false);
            self.check_preempt(plan.to, plan.pid);
            self.recomp[plan.from.index()] = true;
            self.recomp[plan.to.index()] = true;
            applied += 1;
        }
        applied
    }

    /// Create and place a task. `parent` is `None` for boot/harness
    /// spawns.
    fn create_task(&mut self, parent: Option<Pid>, spec: TaskSpec) -> Pid {
        let now = self.now();
        let affinity = if spec.affinity.is_empty() {
            self.topo.all_cpus()
        } else {
            spec.affinity
        };
        let parent_cpu = parent.map_or(CpuId(0), |p| self.tasks.get(p).cpu);
        let parent_vruntime = parent.map_or(0, |p| self.tasks.get(p).vruntime);
        let parent_gang = parent.and_then(|p| self.tasks.get(p).gang);
        let pid = self.tasks.alloc(|pid| {
            let mut t = Task::new(pid, spec.name.clone(), spec.policy, affinity);
            t.program = Some(spec.program);
            t.parent = parent;
            t.tag = spec.tag;
            t.cpu = parent_cpu;
            t.vruntime = parent_vruntime;
            t.gang = parent_gang;
            t
        });
        if let Some(p) = parent {
            self.tasks.get_mut(p).alive_children += 1;
        }
        if let Some(g) = parent_gang {
            // The parent holds a reference, so the gang set (and with it
            // the rotation) is unchanged: bump the count only.
            *self.gang_refs.entry(g).or_insert(0) += 1;
        }
        self.counters.add_sw(parent_cpu, SwEvent::Forks, 1);
        // Fork placement through the class's fork balancer.
        let ci = self.class_idx(self.tasks.get(pid));
        let target = {
            let (classes, tasks, cfg, topo, domains, load) = (
                &mut self.classes,
                &self.tasks,
                &self.cfg,
                &self.topo,
                &self.domains,
                &self.load,
            );
            let ctx = Self::sched_ctx(cfg, topo, domains, now);
            classes[ci].select_cpu_fork(tasks.get(pid), parent_cpu, &ctx, load, tasks)
        };
        if !self.observers.is_empty() {
            self.emit(SchedEvent::SetSched {
                pid,
                from: None,
                to: spec.policy,
            });
            self.emit(SchedEvent::ForkPlaced {
                pid,
                parent,
                cpu: target,
            });
        }
        self.set_task_cpu(pid, target, MigrateReason::Fork);
        self.enqueue_task(target, pid, false);
        self.check_preempt(target, pid);
        pid
    }

    /// Spawn a task from outside the simulation (harness API). Drains
    /// pending reschedules so the task may start immediately.
    pub fn spawn(&mut self, spec: TaskSpec) -> Pid {
        let pid = self.create_task(None, spec);
        self.drain();
        pid
    }

    /// Forcibly terminate `root` and every live descendant (harness
    /// API) — the kernel half of a runtime-level job abort: when a peer
    /// node crashes, surviving nodes reap the job's local task tree so
    /// orphaned ranks cannot keep spinning on (and distorting placement
    /// across) this node's CPUs. Each member gets ordinary — if abrupt
    /// — exit accounting: `exited_at` stamped, sync waits forgotten,
    /// child bookkeeping propagated to parents outside the tree.
    /// Returns the number of tasks killed. Must be called between
    /// events (a window boundary), like every harness API.
    pub fn kill_tree(&mut self, root: Pid) -> usize {
        // Parent-before-child order, so an in-tree parent is already
        // dead when its child's exit bookkeeping runs and is never
        // spuriously woken from a `Children` wait.
        let mut members = vec![root];
        let mut i = 0;
        while i < members.len() {
            let p = members[i];
            members.extend(
                self.tasks
                    .iter()
                    .filter(|t| t.parent == Some(p) && t.state != TaskState::Dead)
                    .map(|t| t.pid),
            );
            i += 1;
        }
        let now = self.now();
        let mut killed = 0;
        for &pid in &members {
            let (state, cpu) = {
                let t = self.tasks.get(pid);
                (t.state, t.cpu)
            };
            match state {
                TaskState::Dead => continue,
                TaskState::Running => {
                    // Yank it off its CPU mid-segment (the affinity
                    // path's forced-migration dance, minus the requeue).
                    self.sync_cpu(cpu, now);
                    self.set_curr(cpu, None);
                    self.counters.add_sw(cpu, SwEvent::ContextSwitches, 1);
                    self.resched[cpu.index()] = true;
                    self.recomp[cpu.index()] = true;
                }
                TaskState::Runnable => {
                    debug_assert_ne!(
                        self.cpus[cpu.index()].curr,
                        Some(pid),
                        "between events a CPU's current task is Running"
                    );
                    self.dequeue_task(cpu, pid);
                }
                TaskState::Blocked(_) => {}
            }
            {
                let t = self.tasks.get_mut(pid);
                t.state = TaskState::Dead;
                t.exited_at = Some(now);
                t.spin = None;
            }
            if !self.observers.is_empty() {
                self.emit(SchedEvent::Deactivate {
                    pid,
                    cpu,
                    reason: DeactivateReason::Exit,
                });
            }
            self.sync.forget(pid);
            self.cache.forget(pid);
            self.gang_release(pid);
            if let Some(pp) = self.tasks.get(pid).parent {
                let p = self.tasks.get_mut(pp);
                p.alive_children = p.alive_children.saturating_sub(1);
                if p.alive_children == 0 && p.state == TaskState::Blocked(BlockReason::Children) {
                    self.wake_task(pp);
                }
            }
            killed += 1;
        }
        self.drain();
        killed
    }

    /// Exit the current task `pid`.
    fn do_exit(&mut self, pid: Pid) {
        let now = self.now();
        {
            let t = self.tasks.get_mut(pid);
            debug_assert_eq!(t.state, TaskState::Running, "only the current task exits");
            t.state = TaskState::Dead;
            t.exited_at = Some(now);
        }
        if !self.observers.is_empty() {
            let cpu = self.tasks.get(pid).cpu;
            self.emit(SchedEvent::Deactivate {
                pid,
                cpu,
                reason: DeactivateReason::Exit,
            });
        }
        self.sync.forget(pid);
        self.cache.forget(pid);
        self.gang_release(pid);
        let parent = self.tasks.get(pid).parent;
        if let Some(pp) = parent {
            let p = self.tasks.get_mut(pp);
            p.alive_children = p.alive_children.saturating_sub(1);
            if p.alive_children == 0 && p.state == TaskState::Blocked(BlockReason::Children) {
                self.wake_task(pp);
            }
        }
        let cpu = self.tasks.get(pid).cpu;
        self.resched[cpu.index()] = true;
    }

    /// Block the current task of `cpu` for `reason`.
    fn block_curr(&mut self, cpu: CpuId, pid: Pid, reason: BlockReason) {
        debug_assert_eq!(self.cpus[cpu.index()].curr, Some(pid));
        self.tasks.get_mut(pid).state = TaskState::Blocked(reason);
        if !self.observers.is_empty() {
            self.emit(SchedEvent::Deactivate {
                pid,
                cpu,
                reason: DeactivateReason::Block,
            });
        }
        self.resched[cpu.index()] = true;
    }

    /// Deliver a satisfied wait to `pid` (woken from block, or spin
    /// cancelled).
    fn deliver(&mut self, pid: Pid, how: Waiting) {
        match how {
            Waiting::Blocked => self.wake_task(pid),
            Waiting::Spinning => {
                let t = self.tasks.get_mut(pid);
                debug_assert!(t.spin.is_some(), "{pid} delivered spin it doesn't hold");
                t.spin = None;
                t.segment_remaining = 0;
                let cpu = t.cpu;
                if self.cpus[cpu.index()].curr == Some(pid) {
                    // Spinning right now: settle accounting then advance.
                    self.sync_cpu(cpu, self.now());
                    self.tasks.get_mut(pid).segment_remaining = 0;
                    self.advance_program(pid, cpu);
                    self.recomp[cpu.index()] = true;
                } else {
                    // Preempted mid-spin and now satisfied: its wait is
                    // over, so route it through wakeup placement exactly
                    // like a blocked waiter. Leaving it queued where it
                    // was preempted could strand it behind the current
                    // task — fatal under FIFO, which never timeslices.
                    debug_assert_eq!(self.tasks.get(pid).state, TaskState::Runnable);
                    self.dequeue_task(cpu, pid);
                    self.tasks.get_mut(pid).state = TaskState::Blocked(BlockReason::Timer);
                    if !self.observers.is_empty() {
                        // The transient block must be visible to
                        // observers, or the Wakeup below would arrive
                        // for a task they believe is still runnable.
                        self.emit(SchedEvent::Deactivate {
                            pid,
                            cpu,
                            reason: DeactivateReason::Block,
                        });
                    }
                    self.wake_task(pid);
                }
            }
        }
    }

    /// Run the program of the current task `pid` on `cpu` until it
    /// produces a segment, blocks, or exits.
    fn advance_program(&mut self, pid: Pid, cpu: CpuId) {
        debug_assert!(
            !self.advancing.contains(&pid),
            "re-entrant advance of {pid}"
        );
        self.advancing.push(pid);
        loop {
            debug_assert_eq!(self.tasks.get(pid).state, TaskState::Running);
            let mut program = self
                .tasks
                .get_mut(pid)
                .program
                .take()
                .expect("running task has a program");
            let step = {
                let mut ctx = ProgCtx {
                    pid,
                    now: self.now(),
                    rng: &mut self.rng,
                };
                program.next_step(&mut ctx)
            };
            self.tasks.get_mut(pid).program = Some(program);
            match step {
                Step::Compute(work) => {
                    self.tasks.get_mut(pid).segment_remaining = work.as_nanos().max(1);
                    self.recomp[cpu.index()] = true;
                    break;
                }
                Step::Sleep(dur) => {
                    self.block_curr(cpu, pid, BlockReason::Timer);
                    self.queue.schedule(self.now() + dur, Ev::TimerWake(pid));
                    break;
                }
                Step::WaitChan(chan) => match self.sync.wait(chan, pid) {
                    WaitOutcome::Proceed => continue,
                    WaitOutcome::Wait => {
                        self.block_curr(cpu, pid, BlockReason::Chan(chan));
                        break;
                    }
                },
                Step::WaitChanSpin { chan, spin_limit } => match self.sync.spin_wait(chan, pid) {
                    WaitOutcome::Proceed => continue,
                    WaitOutcome::Wait => {
                        let t = self.tasks.get_mut(pid);
                        t.spin = Some(SpinTarget::Chan(chan));
                        t.segment_remaining = spin_limit.as_nanos().max(1);
                        self.recomp[cpu.index()] = true;
                        break;
                    }
                },
                Step::Notify { chan, tokens } => {
                    let satisfied = self.sync.notify(chan, tokens);
                    for (p, how) in satisfied {
                        self.deliver(p, how);
                    }
                    continue;
                }
                Step::NetSend {
                    chan,
                    tokens,
                    bytes,
                } => {
                    if self.net_external.contains(&chan) {
                        self.outbound.push(NetMsg {
                            at: self.now(),
                            chan,
                            tokens,
                            bytes,
                        });
                        if !self.observers.is_empty() {
                            self.emit(SchedEvent::NetSend {
                                pid,
                                cpu,
                                chan,
                                tokens,
                                bytes,
                            });
                        }
                    } else {
                        // Same-node consumer: shared-memory fast path,
                        // identical to a plain notify.
                        let satisfied = self.sync.notify(chan, tokens);
                        for (p, how) in satisfied {
                            self.deliver(p, how);
                        }
                    }
                    continue;
                }
                Step::Barrier { id, parties } => {
                    match self.sync.barrier_arrive(id, parties, pid, false) {
                        Some(released) => {
                            for (p, how) in released {
                                self.deliver(p, how);
                            }
                            continue;
                        }
                        None => {
                            self.block_curr(cpu, pid, BlockReason::Barrier(id));
                            break;
                        }
                    }
                }
                Step::BarrierSpin {
                    id,
                    parties,
                    spin_limit,
                } => match self.sync.barrier_arrive(id, parties, pid, true) {
                    Some(released) => {
                        for (p, how) in released {
                            self.deliver(p, how);
                        }
                        continue;
                    }
                    None => {
                        let t = self.tasks.get_mut(pid);
                        t.spin = Some(SpinTarget::Barrier(id));
                        t.segment_remaining = spin_limit.as_nanos().max(1);
                        self.recomp[cpu.index()] = true;
                        break;
                    }
                },
                Step::Fork(spec) => {
                    self.create_task(Some(pid), spec);
                    continue;
                }
                Step::SetPolicy { target, policy } => {
                    let target = target.unwrap_or(pid);
                    self.set_policy(target, policy);
                    continue;
                }
                Step::SetAffinity { target, mask } => {
                    let target = target.unwrap_or(pid);
                    self.set_affinity(target, mask);
                    continue;
                }
                Step::WaitChildren => {
                    if self.tasks.get(pid).alive_children == 0 {
                        continue;
                    }
                    self.block_curr(cpu, pid, BlockReason::Children);
                    break;
                }
                Step::Exit => {
                    self.do_exit(pid);
                    break;
                }
                Step::Emit(ev) => {
                    // Observability annotation from user-space (the
                    // coord arbiter's lease grants). Observers are pure
                    // sinks, so this cannot perturb the simulation; it
                    // costs nothing when no sink is attached.
                    if !self.observers.is_empty() {
                        self.emit(ev);
                    }
                    continue;
                }
            }
        }
        let popped = self.advancing.pop();
        debug_assert_eq!(popped, Some(pid));
    }

    /// `sched_setscheduler`: move a task between scheduling classes.
    pub fn set_policy(&mut self, pid: Pid, policy: crate::task::Policy) {
        assert!(
            self.supports_policy(policy),
            "no scheduling class registered for {policy:?}"
        );
        let state = self.tasks.get(pid).state;
        if !self.observers.is_empty() {
            let from = self.tasks.get(pid).policy;
            self.emit(SchedEvent::SetSched {
                pid,
                from: Some(from),
                to: policy,
            });
        }
        match state {
            TaskState::Runnable => {
                // Dequeue under the old class, switch, re-enqueue.
                let cpu = self.tasks.get(pid).cpu;
                self.dequeue_task(cpu, pid);
                self.tasks.get_mut(pid).set_policy(policy);
                self.enqueue_task(cpu, pid, false);
                self.check_preempt(cpu, pid);
            }
            TaskState::Running => {
                // Takes effect at the next reschedule: put_prev will file
                // the task under its new class.
                let cpu = self.tasks.get(pid).cpu;
                self.tasks.get_mut(pid).set_policy(policy);
                self.resched[cpu.index()] = true;
            }
            TaskState::Blocked(_) | TaskState::Dead => {
                self.tasks.get_mut(pid).set_policy(policy);
            }
        }
        // If the task is some CPU's current, the load view's class/prio
        // of that CPU just changed in place.
        let cpu = self.tasks.get(pid).cpu;
        if self.cpus[cpu.index()].curr == Some(pid) {
            self.load.curr_kind[cpu.index()] = Some(class_of_policy(policy));
            self.load.curr_rt_prio[cpu.index()] = policy.rt_prio().unwrap_or(0);
        }
    }

    /// `sched_setaffinity`: restrict a task to a CPU mask.
    pub fn set_affinity(&mut self, pid: Pid, mask: CpuMask) {
        assert!(!mask.is_empty(), "affinity mask must be non-empty");
        let state = self.tasks.get(pid).state;
        let cpu = self.tasks.get(pid).cpu;
        self.tasks.get_mut(pid).affinity = mask;
        if mask.contains(cpu) {
            return;
        }
        let dest = mask.first().expect("non-empty mask");
        match state {
            TaskState::Runnable => {
                if self.cpus[cpu.index()].curr == Some(pid) {
                    unreachable!("runnable-but-current handled in Running arm");
                }
                self.dequeue_task(cpu, pid);
                self.set_task_cpu(pid, dest, MigrateReason::Affinity);
                self.enqueue_task(dest, pid, false);
                self.check_preempt(dest, pid);
            }
            TaskState::Running => {
                // Force off this CPU at the next reschedule point: mark
                // and move immediately (the migration thread would do
                // this synchronously in Linux).
                self.sync_cpu(cpu, self.now());
                self.tasks.get_mut(pid).state = TaskState::Runnable;
                self.set_curr(cpu, None);
                self.counters.add_sw(cpu, SwEvent::ContextSwitches, 1);
                self.set_task_cpu(pid, dest, MigrateReason::Affinity);
                self.enqueue_task(dest, pid, false);
                self.check_preempt(dest, pid);
                self.resched[cpu.index()] = true;
                self.recomp[cpu.index()] = true;
            }
            TaskState::Blocked(_) => {
                // Placement fixed at wakeup; just update the stored CPU
                // so select_cpu_wakeup starts from a legal one.
                self.set_task_cpu(pid, dest, MigrateReason::Affinity);
            }
            TaskState::Dead => {}
        }
    }

    // ---------------------------------------------------------------
    // Gang co-scheduling
    // ---------------------------------------------------------------

    /// Enroll `pid` — and, through fork inheritance, every descendant
    /// it creates from now on — in gang `gang`. Harness API, called
    /// between events: the cluster driver enrolls each job's local
    /// root when [`KernelConfig::gang_epoch`] is set, so all of a
    /// job's ranks on a node share one gang id (the job id). Without
    /// the config knob the tag is inert bookkeeping.
    pub fn gang_enroll(&mut self, pid: Pid, gang: u64) {
        if self.tasks.get(pid).gang == Some(gang) {
            return;
        }
        self.gang_release(pid);
        self.tasks.get_mut(pid).gang = Some(gang);
        *self.gang_refs.entry(gang).or_insert(0) += 1;
        self.gang_recompute();
        self.drain();
    }

    /// Enroll `pid` in gang `gang` with an explicit milli-CPU share —
    /// [`Self::gang_enroll`] followed by [`Self::gang_set_share`] in
    /// one call (the form the coord runtime uses at job launch).
    pub fn gang_enroll_shared(&mut self, pid: Pid, gang: u64, share_milli: u32) {
        self.gang_enroll(pid, gang);
        self.gang_set_share(gang, share_milli);
    }

    /// Set gang `gang`'s milli-CPU share for weighted slicing. While
    /// any share is set, each gang's slice of the rotation period is
    /// proportional to its share (gangs without an entry weigh the
    /// default 1000), computed by [`crate::gang::weighted_slices`] —
    /// still a pure function of the shared virtual clock, so lockstep
    /// nodes with the same gangs and shares stay aligned without
    /// messages. Equal shares reproduce the unweighted rotation's
    /// boundaries exactly; an empty table takes the legacy code path
    /// byte for byte. Shares of gangs whose last member exits are
    /// pruned automatically.
    pub fn gang_set_share(&mut self, gang: u64, share_milli: u32) {
        assert!(share_milli > 0, "gang share must be non-zero");
        if self.gang_shares.insert(gang, share_milli) == Some(share_milli) {
            return;
        }
        self.gang_recompute();
        self.drain();
    }

    /// The milli-CPU share of `gang` (1000 when unset — the weighted
    /// slicer's default weight).
    pub fn gang_share(&self, gang: u64) -> u32 {
        self.gang_shares.get(&gang).copied().unwrap_or(1000)
    }

    /// The gang currently allowed to run (`None` = no rotation in
    /// force: fewer than two gangs live, or no epoch configured).
    pub fn gang_active(&self) -> Option<u64> {
        self.gang_active
    }

    /// Number of live gangs enrolled on this node.
    pub fn gang_count(&self) -> usize {
        self.gang_refs.len()
    }

    /// Drop `pid`'s gang membership (exit/kill path). When the last
    /// member of a gang leaves, the gang disappears from the rotation
    /// immediately: the survivors re-derive the active slot from the
    /// clock, so a dead job cannot hold its timeslice until the next
    /// epoch boundary.
    fn gang_release(&mut self, pid: Pid) {
        let Some(g) = self.tasks.get(pid).gang else {
            return;
        };
        self.tasks.get_mut(pid).gang = None;
        let n = self
            .gang_refs
            .get_mut(&g)
            .expect("released gang is enrolled");
        *n -= 1;
        if *n == 0 {
            self.gang_refs.remove(&g);
            // A dead gang's share must not keep skewing the rotation
            // (job ids are never recycled, so the entry is garbage).
            self.gang_shares.remove(&g);
        }
        self.gang_recompute();
    }

    /// Re-derive the active gang from the clock and the live gang set,
    /// notify classes and observers on a change, and keep the epoch
    /// event armed. The active gang is a pure function of virtual
    /// time, the gang set and the epoch length —
    /// `sorted_gangs[(t / epoch) % count]` — with no per-node phase
    /// state, so every node that shares the virtual clock (lockstep
    /// co-simulation) and the co-resident set switches the same gang
    /// in the same window without exchanging any messages.
    fn gang_recompute(&mut self) {
        let epoch = self.cfg.gang_epoch;
        // (desired active gang, next boundary in ns if rotation is in
        // force). The weighted path runs only while a share is set, so
        // share-free nodes execute exactly the legacy computation.
        let (desired, boundary) = match epoch {
            Some(len) if self.gang_refs.len() >= 2 => {
                if self.gang_shares.is_empty() {
                    let k = self.now().as_nanos() / len.as_nanos();
                    let idx = (k % self.gang_refs.len() as u64) as usize;
                    (
                        self.gang_refs.keys().nth(idx).copied(),
                        Some((k + 1) * len.as_nanos()),
                    )
                } else {
                    let gangs: Vec<(u64, u32)> = self
                        .gang_refs
                        .keys()
                        .map(|&g| (g, self.gang_shares.get(&g).copied().unwrap_or(1000)))
                        .collect();
                    let (active, next) =
                        crate::gang::active_at(self.now().as_nanos(), len.as_nanos(), &gangs);
                    (Some(active), Some(next))
                }
            }
            _ => (None, None),
        };
        if desired != self.gang_active {
            self.gang_active = desired;
            let mut affects_pick = false;
            for c in self.classes.iter_mut() {
                affects_pick |= c.gang_epoch(desired);
            }
            if affects_pick {
                for r in self.resched.iter_mut() {
                    *r = true;
                }
            }
            if !self.observers.is_empty() {
                self.emit(SchedEvent::GangEpoch {
                    active: desired,
                    gangs: self.gang_refs.len() as u32,
                });
            }
        }
        // Weighted slicing publishes one GangSlice per slice — keyed on
        // (gang, boundary) so mid-slice recomputes don't re-emit, and a
        // share change that *moves* the boundary emits the corrected
        // remainder. Absent in the unweighted path, so share-free runs
        // keep their observer streams bit-identical.
        if !self.gang_shares.is_empty() && !self.observers.is_empty() {
            if let (Some(g), Some(b)) = (desired, boundary) {
                if self.gang_slice_mark != Some((g, b)) {
                    self.gang_slice_mark = Some((g, b));
                    self.emit(SchedEvent::GangSlice {
                        gang: g,
                        share_milli: self.gang_shares.get(&g).copied().unwrap_or(1000),
                        slice_ns: b - self.now().as_nanos(),
                        gangs: self.gang_refs.len() as u32,
                    });
                }
            }
        }
        if let Some(next_ns) = boundary {
            // Arm the next slice boundary. The legacy path arms only
            // when nothing is pending (one outstanding event, exactly
            // as before); the weighted path additionally arms when a
            // share change moved the boundary *earlier* than the
            // pending event — the stale later event recomputes
            // harmlessly when it fires.
            if self.gang_armed.is_none_or(|armed| next_ns < armed) {
                self.queue.schedule(
                    SimTime::ZERO + SimDuration::from_nanos(next_ns),
                    Ev::GangEpoch,
                );
                self.gang_armed = Some(next_ns);
            }
        }
    }

    fn on_gang_epoch(&mut self) {
        self.gang_armed = None;
        self.gang_recompute();
    }

    // ---------------------------------------------------------------
    // Scheduler core
    // ---------------------------------------------------------------

    /// `__schedule()`: put back the previous task, pick the next one
    /// (with new-idle balancing if all classes are empty), account the
    /// context switch, and start the program if needed.
    fn schedule(&mut self, cpu: CpuId) {
        let now = self.now();
        self.sync_cpu(cpu, now);
        let idx = cpu.index();
        let mut prev = self.cpus[idx].curr;
        if let Some(p) = prev {
            // A prev that blocked here may have been woken and placed on
            // another CPU before this reschedule ran — it may even be
            // running there already. It is no longer this CPU's task:
            // requeueing it here would run it on two CPUs at once (and
            // exit it twice).
            if self.tasks.get(p).cpu != cpu {
                prev = None;
            }
        }
        let prev_occupied = prev.is_some();

        if let Some(p) = prev {
            self.tasks.get_mut(p).last_descheduled = now;
            if self.tasks.get(p).state == TaskState::Running {
                self.tasks.get_mut(p).state = TaskState::Runnable;
                let ci = self.class_idx(self.tasks.get(p));
                let (classes, tasks, cfg, topo, domains) = (
                    &mut self.classes,
                    &mut self.tasks,
                    &self.cfg,
                    &self.topo,
                    &self.domains,
                );
                let ctx = Self::sched_ctx(cfg, topo, domains, now);
                classes[ci].put_prev(cpu, tasks.get_mut(p), &ctx);
                // put_prev re-inserted the (runnable) task into its
                // class queue: the queue side of the load view grows.
                self.load.nr_running[idx] += 1;
            }
        }
        self.set_curr(cpu, None);

        let mut picked = self.pick_from_classes(cpu);
        let mut via_idle_balance = false;
        if picked.is_none() && self.cfg.balance == BalanceMode::Full {
            // New-idle balance: classes in priority order.
            self.counters.add_sw(cpu, SwEvent::LoadBalanceCalls, 1);
            self.cpus[idx].pending_overhead += self.cfg.balance_cost;
            let mut plans = std::mem::take(&mut self.plan_buf);
            let mut pulled = 0;
            for ci in 0..self.classes.len() {
                plans.clear();
                {
                    let (classes, tasks, cfg, topo, domains, load) = (
                        &mut self.classes,
                        &self.tasks,
                        &self.cfg,
                        &self.topo,
                        &self.domains,
                        &self.load,
                    );
                    let ctx = Self::sched_ctx(cfg, topo, domains, now);
                    classes[ci].idle_balance(cpu, &ctx, load, tasks, &mut plans);
                }
                let applied = self.apply_migrations(&plans);
                pulled += applied;
                if applied > 0 {
                    picked = self.pick_from_classes(cpu);
                    if picked.is_some() {
                        via_idle_balance = true;
                        break;
                    }
                }
            }
            plans.clear();
            self.plan_buf = plans;
            if !self.observers.is_empty() {
                self.emit(SchedEvent::Balance {
                    cpu,
                    kind: BalanceKind::NewIdle,
                    migrations: pulled,
                });
            }
        }

        if let Some(pid) = picked {
            self.tasks.get_mut(pid).state = TaskState::Running;
            self.set_curr(cpu, Some(pid));
        }
        if !self.observers.is_empty() {
            let class = picked.map(|p| class_of_policy(self.tasks.get(p).policy));
            let prev_vruntime = prev.and_then(|p| {
                let t = self.tasks.get(p);
                (class_of_policy(t.policy) == ClassKind::Fair).then_some(t.vruntime)
            });
            self.emit(SchedEvent::Pick {
                cpu,
                prev,
                picked,
                class,
                via_idle_balance,
                prev_vruntime,
            });
        }

        let new = self.cpus[idx].curr;
        if prev != new {
            if !self.observers.is_empty() {
                self.emit(SchedEvent::Switch {
                    cpu,
                    from: prev,
                    to: new,
                });
                // Per-gang CPU-time attribution: while any gang is
                // live, tag each switch with the incoming task's gang
                // so MetricsSink can integrate busy time per gang.
                // Gang-free runs emit nothing — their observer streams
                // stay bit-identical.
                if !self.gang_refs.is_empty() {
                    let gang = new.and_then(|p| self.tasks.get(p).gang);
                    self.emit(SchedEvent::GangRun { cpu, gang });
                }
            }
            self.counters.add_sw(cpu, SwEvent::ContextSwitches, 1);
            self.cpus[idx].pending_overhead += self.cfg.ctx_switch_cost;
            self.counters.add_hw(
                cpu,
                HwEvent::CtxSwitchOverheadNs,
                self.cfg.ctx_switch_cost.as_nanos(),
            );
            if let Some(p) = prev {
                match self.tasks.get(p).state {
                    TaskState::Blocked(_) | TaskState::Dead => {
                        self.counters.add_sw(cpu, SwEvent::VoluntarySwitches, 1)
                    }
                    _ => self
                        .counters
                        .add_sw(cpu, SwEvent::InvoluntaryPreemptions, 1),
                }
            }
            if let Some(n) = new {
                let t = self.tasks.get_mut(n);
                t.ran_since_pick = SimDuration::ZERO;
                t.nr_switches += 1;
            }
        }

        // Occupancy transitions change the SMT speed of siblings.
        if prev_occupied != new.is_some() {
            for sib in self.topo.smt_siblings(cpu).iter() {
                if sib != cpu {
                    self.sync_cpu(sib, now);
                    self.recomp[sib.index()] = true;
                }
            }
        }
        self.recomp[idx] = true;

        if let Some(pid) = new {
            let t = self.tasks.get(pid);
            if t.segment_remaining == 0 && t.spin.is_none() {
                self.advance_program(pid, cpu);
            }
        }
    }

    fn pick_from_classes(&mut self, cpu: CpuId) -> Option<Pid> {
        for c in self.classes.iter_mut() {
            if let Some(pid) = c.pick_next(cpu, &self.tasks) {
                // pick_next removed the pid from its class queue; the
                // caller re-adds it through set_curr when it installs
                // the task as current.
                self.load.nr_running[cpu.index()] -= 1;
                return Some(pid);
            }
        }
        None
    }

    /// Drain pending reschedules and completion re-estimates.
    fn drain(&mut self) {
        while let Some(idx) = self.resched.iter().position(|&r| r) {
            self.resched[idx] = false;
            self.schedule(CpuId(idx as u32));
        }
        for idx in 0..self.recomp.len() {
            if self.recomp[idx] {
                self.recomp[idx] = false;
                self.schedule_completion(CpuId(idx as u32));
            }
        }
        #[cfg(debug_assertions)]
        self.assert_load_consistent();
    }

    /// Would this CPU's timer tick, fired at `now`, be a provable no-op
    /// (beyond counting itself)? True for an idle CPU and — under
    /// `tickless_single_hpc` — for a CPU whose lone HPC task's class
    /// says the tick is skippable; in both cases only when no periodic
    /// balance level is due, since balancing observes and mutates
    /// cross-CPU state.
    fn tick_is_quiescent(&self, cpu: CpuId, now: SimTime) -> bool {
        if self.cfg.balance == BalanceMode::Full && self.balance_clock.any_due(cpu, now) {
            return false;
        }
        // The incremental load view answers "is anything queued?" in
        // O(1): `nr_running` counts the current task plus every queued
        // task across classes (debug builds cross-check it in `drain`).
        let idx = cpu.index();
        match self.cpus[idx].curr {
            // NOHZ idle: the tick only settles an idle clock.
            None => self.load.nr_running[idx] == 0,
            Some(pid) => {
                if !self.cfg.tickless_single_hpc || self.load.nr_running[idx] != 1 {
                    return false;
                }
                let t = self.tasks.get(pid);
                t.policy == crate::task::Policy::Hpc
                    && self.classes[self.class_idx(t)].tick_skippable(cpu, t)
            }
        }
    }

    // ---------------------------------------------------------------
    // Event handlers
    // ---------------------------------------------------------------

    fn on_tick(&mut self, cpu: CpuId) {
        let now = self.now();
        let idx = cpu.index();

        // Quiescent fast path: the tick is a provable no-op, so count it
        // and return. An idle CPU's skipped sync_cpu is exact (its
        // pending overhead is absorbed at the next sync-before-pick); a
        // lone tickless-HPC task's accounting is settled in one lump at
        // its next real event instead of per tick. Shared by both event
        // paths so fast and reference runs stay byte-identical.
        if self.tick_is_quiescent(cpu, now) {
            self.counters.add_sw(cpu, SwEvent::TimerTicks, 1);
            if !self.observers.is_empty() {
                self.emit(SchedEvent::Tick {
                    cpu,
                    outcome: TickOutcome::Quiescent,
                });
            }
            if !self.cfg.fast_event_loop {
                self.queue
                    .schedule(now + self.cfg.tick_period, Ev::Tick(cpu));
            }
            return;
        }

        self.sync_cpu(cpu, now);
        self.counters.add_sw(cpu, SwEvent::TimerTicks, 1);

        // Tick handler cost (micro-noise). Idle CPUs are always tickless
        // (NOHZ idle, standard since well before 2.6.34); the
        // NETTICK-style option extends that to CPUs running exactly one
        // HPC task.
        let tickless = self.cpus[idx].curr.is_none()
            || (self.cfg.tickless_single_hpc
                && self.cpus[idx]
                    .curr
                    .is_some_and(|pid| self.tasks.get(pid).policy == crate::task::Policy::Hpc)
                && self.classes.iter().map(|c| c.nr_queued(cpu)).sum::<u32>() == 0);
        if !tickless {
            self.cpus[idx].pending_overhead += self.cfg.tick_cost;
            self.counters
                .add_hw(cpu, HwEvent::TickOverheadNs, self.cfg.tick_cost.as_nanos());
            self.recomp[idx] = true;
        }

        // Scheduler-class tick (slice expiry etc.).
        let mut tick_resched = false;
        if let Some(pid) = self.cpus[idx].curr {
            let ci = self.class_idx(self.tasks.get(pid));
            let need = {
                let (classes, tasks, cfg, topo, domains) = (
                    &mut self.classes,
                    &mut self.tasks,
                    &self.cfg,
                    &self.topo,
                    &self.domains,
                );
                let ctx = Self::sched_ctx(cfg, topo, domains, now);
                classes[ci].task_tick(cpu, tasks.get_mut(pid), &ctx)
            };
            if need {
                self.resched[idx] = true;
                tick_resched = true;
            }
        }
        if !self.observers.is_empty() {
            let outcome = if tickless {
                TickOutcome::Skipped
            } else {
                TickOutcome::Accounted {
                    resched: tick_resched,
                }
            };
            self.emit(SchedEvent::Tick { cpu, outcome });
        }

        // Periodic load balancing. Busy CPUs balance far less often
        // (sd->busy_factor), so steady-state 2-vs-1 blips rarely trigger
        // steals; a CPU left idle re-arms quickly.
        if self.cfg.balance == BalanceMode::Full {
            let busy = self.cpus[idx].curr.is_some();
            let due = self.balance_clock.due_levels(cpu, now, &self.domains, busy);
            let mut plans = std::mem::take(&mut self.plan_buf);
            for level in due {
                self.counters.add_sw(cpu, SwEvent::LoadBalanceCalls, 1);
                self.cpus[idx].pending_overhead += self.cfg.balance_cost;
                let mut moved = 0;
                for ci in 0..self.classes.len() {
                    plans.clear();
                    {
                        let (classes, tasks, cfg, topo, domains, load) = (
                            &mut self.classes,
                            &self.tasks,
                            &self.cfg,
                            &self.topo,
                            &self.domains,
                            &self.load,
                        );
                        let ctx = Self::sched_ctx(cfg, topo, domains, now);
                        classes[ci].periodic_balance(cpu, level, &ctx, load, tasks, &mut plans);
                    }
                    moved += self.apply_migrations(&plans);
                }
                if !self.observers.is_empty() {
                    self.emit(SchedEvent::Balance {
                        cpu,
                        kind: BalanceKind::Periodic { level },
                        migrations: moved,
                    });
                }
            }
            plans.clear();
            self.plan_buf = plans;
        }

        // Fast path: the periodic slot re-armed itself when this tick
        // was popped (with the same sequence number this `schedule`
        // would have drawn — the handler allocates no other events).
        if !self.cfg.fast_event_loop {
            self.queue
                .schedule(now + self.cfg.tick_period, Ev::Tick(cpu));
        }
    }

    fn on_seg_done(&mut self, cpu: CpuId, gen: u64) {
        let idx = cpu.index();
        if gen != self.cpus[idx].seg_gen {
            return; // superseded estimate
        }
        let now = self.now();
        self.sync_cpu(cpu, now);
        let Some(pid) = self.cpus[idx].curr else {
            return;
        };
        let t = self.tasks.get(pid);
        if t.segment_remaining > 0 {
            // Overheads or speed changes pushed completion out; refine.
            self.recomp[idx] = true;
            return;
        }
        match t.spin {
            None => self.advance_program(pid, cpu),
            Some(SpinTarget::Chan(chan)) => {
                // Spin expired: become a proper blocked waiter.
                self.sync.chan_spin_to_block(chan, pid);
                self.tasks.get_mut(pid).spin = None;
                self.block_curr(cpu, pid, BlockReason::Chan(chan));
            }
            Some(SpinTarget::Barrier(id)) => {
                self.sync.barrier_spin_to_block(id, pid);
                self.tasks.get_mut(pid).spin = None;
                self.block_curr(cpu, pid, BlockReason::Barrier(id));
            }
        }
    }

    fn on_irq(&mut self) {
        let Some(irq) = self.irq.clone() else { return };
        // Uniformly choose a servicing CPU from the affinity mask
        // (k-th set bit; no allocation — this runs at kHz rates).
        let k = self.rng.below(irq.affinity.count() as u64) as usize;
        let cpu = irq
            .affinity
            .iter()
            .nth(k)
            .expect("with_irq asserts a non-empty affinity");
        let now = self.now();
        self.sync_cpu(cpu, now);
        // The handler steals wall time from whatever runs there — task,
        // HPC rank, RT thread alike. Interrupts outrank every scheduler.
        self.cpus[cpu.index()].pending_overhead += irq.cost;
        self.counters.add_sw(cpu, SwEvent::Irqs, 1);
        self.counters
            .add_hw(cpu, HwEvent::IrqOverheadNs, irq.cost.as_nanos());
        if !self.observers.is_empty() {
            self.emit(SchedEvent::Irq {
                cpu,
                cost: irq.cost,
            });
        }
        self.recomp[cpu.index()] = true;
        let next = exp_interval(irq.rate_hz, &mut self.rng);
        self.queue.schedule(now + next, Ev::Irq);
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Tick(cpu) => self.on_tick(cpu),
            Ev::SegDone { cpu, gen } => self.on_seg_done(cpu, gen),
            Ev::TimerWake(pid) => {
                if self.tasks.get(pid).state == TaskState::Blocked(BlockReason::Timer) {
                    self.wake_task(pid);
                }
            }
            Ev::Irq => self.on_irq(),
            Ev::GangEpoch => self.on_gang_epoch(),
            Ev::NetDeliver {
                chan,
                tokens,
                sent_at,
                queued_ns,
            } => {
                if !self.observers.is_empty() {
                    self.emit(SchedEvent::NetDeliver {
                        chan,
                        tokens,
                        latency: self.now().since(sent_at),
                        queued: SimDuration::from_nanos(queued_ns),
                    });
                }
                let satisfied = self.sync.notify(chan, tokens);
                for (p, how) in satisfied {
                    self.deliver(p, how);
                }
            }
        }
    }

    /// Register `chan` as a network endpoint: from now on a
    /// [`Step::NetSend`] targeting it is captured into the outbound
    /// queue (for the cluster driver) instead of notifying locally.
    /// Registration is append-only for a node's lifetime — the channel
    /// id namespace is owned by the job layout, which never reuses a
    /// cross-node id for a local channel.
    pub fn register_net_channel(&mut self, chan: ChanId) {
        self.net_external.insert(chan);
    }

    /// Drain the captured outbound messages (cluster driver API). Order
    /// is capture order, which is simulation order.
    pub fn take_outbound(&mut self) -> Vec<NetMsg> {
        std::mem::take(&mut self.outbound)
    }

    /// Drain the captured outbound messages into `buf` (cleared first),
    /// handing the node `buf`'s old allocation as its next capture
    /// buffer. A driver that routes every window through the same
    /// scratch vector therefore recycles capacity in both directions and
    /// the per-window hot path stops allocating. Order is capture order,
    /// exactly as [`Self::take_outbound`].
    pub fn drain_outbound_into(&mut self, buf: &mut Vec<NetMsg>) {
        buf.clear();
        std::mem::swap(buf, &mut self.outbound);
    }

    /// True iff at least one captured outbound message is waiting.
    pub fn has_outbound(&self) -> bool {
        !self.outbound.is_empty()
    }

    /// Schedule a cross-node delivery: at time `at` (≥ now), deposit
    /// `tokens` on `chan`, waking waiters exactly like a local notify.
    /// `sent_at`/`queued` feed the observability latency breakdown.
    pub fn post_net_delivery(
        &mut self,
        at: SimTime,
        chan: ChanId,
        tokens: u32,
        sent_at: SimTime,
        queued: SimDuration,
    ) {
        debug_assert!(at >= self.now(), "delivery scheduled in the past");
        self.queue.schedule(
            at,
            Ev::NetDeliver {
                chan,
                tokens,
                sent_at,
                queued_ns: queued.as_nanos(),
            },
        );
    }

    /// Time of this node's next pending event, if any (cluster lockstep
    /// uses the minimum over nodes to pick the next window).
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Run one event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((_, _, ev)) = self.queue.pop() else {
            return false;
        };
        self.events += 1;
        self.dispatch(ev);
        self.drain();
        true
    }

    /// Total events processed so far (dispatched plus batch-fired
    /// quiescent ticks). The perf-regression bench divides this by wall
    /// time to get simulated events/second.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Quiescence fast-forward: batch-fire timer ticks that
    /// [`Self::tick_is_quiescent`] proves are no-ops, advancing their
    /// wheel slots arithmetically instead of popping one event each.
    ///
    /// The batch window `[now, H)` is chosen so that it contains *no*
    /// state-changing event: `H` stops at the next heap event, at any
    /// non-quiescent CPU's next tick, and at `bound` (exclusive). Within
    /// the window quiescence therefore cannot change, and each skipped
    /// tick only counts itself and advances the clock — exactly what
    /// dispatching it would have done.
    ///
    /// Balance deadlines get one of two treatments. When *every* CPU is
    /// idle (no current task, nothing queued anywhere), a due periodic
    /// balance provably moves nothing — there is no task to steal,
    /// queued or running, so CFS finds no busiest queue and active
    /// balance finds no victim — and its entire effect is a
    /// `LoadBalanceCalls` bump plus a clock re-arm. Those are *replayed*
    /// arithmetically per batched tick. Otherwise a quiescent CPU's next
    /// due balance caps the horizon so the balance tick runs normally.
    /// Returns the number of ticks batched.
    ///
    /// Batched ticks are *not* published to observers: they are provably
    /// inert, so no switch, wakeup, migration or preemption decision can
    /// occur inside the window, and replaying millions of
    /// `Tick(Quiescent)` events would defeat the fast path. Ticks that
    /// dispatch normally (including quiescent ones on the reference
    /// path) are always published.
    fn fast_forward(&mut self, bound: Option<SimTime>) -> u64 {
        if !self.cfg.fast_event_loop {
            return 0;
        }
        // O(1) bail-out first: nothing can batch unless a tick precedes
        // the next heap event (and the bound). This is the merge cost a
        // busy node pays per dispatched event, so it runs before the
        // per-CPU scans below.
        let Some(per_t) = self.queue.peek_periodic_time() else {
            return 0;
        };
        let mut horizon = match (self.queue.peek_heap_time(), bound) {
            (Some(h), Some(b)) => h.min(b),
            (Some(h), None) => h,
            (None, Some(b)) => b,
            // Only ticks left and no bound: let the caller's normal
            // stepping (and its hang guard) take over.
            (None, None) => return 0,
        };
        if per_t >= horizon {
            return 0;
        }
        // Profitability gate: a window under two tick periods cannot
        // fire enough ticks to pay for the per-CPU quiescence scan
        // below. Dispatching those ticks normally is exact — the
        // quiescent tick handler is itself O(1) — so skipping the batch
        // only trades wall time, never behaviour.
        if horizon - per_t < self.cfg.tick_period * 2 {
            return 0;
        }
        // A pending reschedule/re-estimate (e.g. set_affinity called
        // between runs) must be handled in event order by the next
        // step()'s drain — batching ahead of it would reorder.
        if self.resched.iter().any(|&r| r) || self.recomp.iter().any(|&r| r) {
            return 0;
        }
        // Without tickless-HPC, only an empty CPU can be quiescent; a
        // fully loaded node (every CPU running or queueing something)
        // has nothing to batch. This is the hot bail-out while a job
        // occupies the whole machine.
        if !self.cfg.tickless_single_hpc && self.load.nr_running.iter().all(|&n| n > 0) {
            return 0;
        }
        let now = self.now();
        let all_idle = self.load.nr_running.iter().all(|&n| n == 0);
        let replay_balance = self.cfg.balance == BalanceMode::Full && all_idle;
        if !all_idle {
            let balance_caps = self.cfg.balance == BalanceMode::Full;
            let mut any_quiescent = false;
            for i in 0..self.cpus.len() {
                let cpu = CpuId(i as u32);
                if self.tick_is_quiescent(cpu, now) {
                    any_quiescent = true;
                    if balance_caps {
                        if let Some(d) = self.balance_clock.next_deadline(cpu) {
                            horizon = horizon.min(d);
                        }
                    }
                } else {
                    horizon = horizon.min(self.queue.periodic_time(self.tick_slots[i]));
                }
            }
            // Fully busy node: no tick can batch, skip the buffer setup.
            if !any_quiescent {
                return 0;
            }
        }
        if horizon <= now {
            return 0;
        }
        for h in self.ff_horizons.iter_mut() {
            *h = horizon;
        }
        for f in self.ff_fired.iter_mut() {
            *f = 0;
        }
        // Pre-advance pending tick times: the balance replay below needs
        // each slot's first batched fire time.
        if replay_balance {
            for i in 0..self.ff_start.len() {
                self.ff_start[i] = self.queue.periodic_time(self.tick_slots[i]);
            }
        }
        let mut fired = std::mem::take(&mut self.ff_fired);
        let horizons = std::mem::take(&mut self.ff_horizons);
        let total = self.queue.advance_periodic(&horizons, &mut fired);
        if replay_balance {
            // Replay each batched tick's balance pass arithmetically:
            // re-arm due levels and charge the calls, exactly as
            // `on_tick` would have. CPUs are independent here — a due
            // level only touches its own clock slot and counters (no
            // migration plans can exist in an all-idle window), so
            // per-CPU jump-from-due-to-due replay gives the same state
            // as the global per-tick order. `pending_overhead` on an
            // idle CPU is absorbed at its next sync anyway — the charge
            // mirrors `on_tick`'s for strict parity.
            let period = self.cfg.tick_period;
            let cost = self.cfg.balance_cost;
            for (i, &n) in fired.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                let cpu = CpuId(i as u32);
                let calls = self.balance_clock.replay_idle_dues(
                    cpu,
                    &self.domains,
                    self.ff_start[i],
                    n,
                    period,
                );
                if calls > 0 {
                    self.counters.add_sw(cpu, SwEvent::LoadBalanceCalls, calls);
                    self.cpus[i].pending_overhead += cost * calls;
                }
            }
        }
        for (i, &n) in fired.iter().enumerate() {
            if n > 0 {
                self.counters
                    .add_sw(CpuId(i as u32), SwEvent::TimerTicks, n);
            }
        }
        self.ff_fired = fired;
        self.ff_horizons = horizons;
        self.events += total;
        total
    }

    /// Run until `deadline`.
    pub fn run_until_time(&mut self, deadline: SimTime) {
        let bound = deadline + SimDuration::from_nanos(1);
        loop {
            self.fast_forward(Some(bound));
            if self.queue.peek_time().is_none_or(|t| t > deadline) {
                break;
            }
            if !self.step() {
                break;
            }
        }
    }

    /// Run for a duration from now.
    pub fn run_for(&mut self, dur: SimDuration) {
        let deadline = self.now() + dur;
        self.run_until_time(deadline);
    }

    /// Run until `pid` has exited, or until the run can provably not
    /// finish: [`RunOutcome::Deadlock`] when the event queue drains with
    /// the task still alive (a lost wakeup or blocked dependency),
    /// [`RunOutcome::BudgetExhausted`] after `max_events` dispatched
    /// events (hang guard; batched quiescent ticks do not count).
    ///
    /// The node is left exactly where the run stopped — callers can
    /// inspect tasks, counters and observers in all three cases.
    pub fn run_until_exit(&mut self, pid: Pid, max_events: u64) -> RunOutcome {
        let mut budget = max_events;
        while self.tasks.get(pid).state != TaskState::Dead {
            self.fast_forward(None);
            if !self.step() {
                return RunOutcome::Deadlock;
            }
            match budget.checked_sub(1) {
                Some(b) => budget = b,
                None => return RunOutcome::BudgetExhausted,
            }
        }
        RunOutcome::Completed
    }

    /// Immutable access to the RNG-derived seed-sensitive state is not
    /// exposed; this hash of scheduler-visible state supports determinism
    /// tests.
    pub fn state_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(self.now().as_nanos());
        for t in self.tasks.iter() {
            mix(t.pid.0 as u64);
            mix(t.cpu.0 as u64);
            mix(t.nr_switches);
            mix(t.nr_migrations);
            mix(t.total_runtime.as_nanos());
            mix(match t.state {
                TaskState::Runnable => 1,
                TaskState::Running => 2,
                TaskState::Blocked(_) => 3,
                TaskState::Dead => 4,
            });
        }
        h
    }
}

// A whole node must be movable to another host thread: the cluster's
// parallel co-simulation steps disjoint nodes on a worker pool. This
// is what the `Send` supertraits on `Program`, `SchedClass` and
// `SchedObserver` buy; a non-`Send` field regression fails right here.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Node>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ScriptProgram;
    use crate::task::Policy;

    fn quiet_node() -> Node {
        NodeBuilder::new(Topology::power6_js22())
            .with_seed(1)
            .build()
    }

    fn compute_spec(name: &str, ms: u64) -> TaskSpec {
        TaskSpec::new(
            name,
            Policy::Normal { nice: 0 },
            ScriptProgram::boxed(name, vec![Step::Compute(SimDuration::from_millis(ms))]),
        )
    }

    #[test]
    fn single_task_runs_to_completion() {
        let mut node = quiet_node();
        let pid = node.spawn(compute_spec("job", 10));
        assert!(node.run_until_exit(pid, 1_000_000).is_complete());
        let t = node.tasks.get(pid);
        assert_eq!(t.state, TaskState::Dead);
        // Cold start + SMT-free: at least 10ms of wall time.
        assert!(node.now().as_secs_f64() >= 0.010);
        assert!(t.exited_at.is_some());
    }

    #[test]
    fn cold_cache_stretches_execution() {
        let mut node = quiet_node();
        let pid = node.spawn(compute_spec("job", 10));
        let start = node.now();
        assert!(node.run_until_exit(pid, 1_000_000).is_complete());
        let elapsed = (node.now() - start).as_secs_f64();
        // 10ms of work at cold-start speed (0.7 rising to 1.0, tau=4ms):
        // must take more than 10ms but less than 10/0.7 ms.
        assert!(elapsed > 0.010, "elapsed {elapsed}");
        assert!(elapsed < 0.0143, "elapsed {elapsed}");
    }

    #[test]
    fn two_tasks_on_one_cpu_share() {
        let mut node = NodeBuilder::new(Topology::smp(1)).with_seed(2).build();
        let a = node.spawn(compute_spec("a", 50));
        let b = node.spawn(compute_spec("b", 50));
        assert!(node.run_until_exit(a, 10_000_000).is_complete());
        assert!(node.run_until_exit(b, 10_000_000).is_complete());
        // Serialized on one CPU: at least 100ms.
        assert!(node.now().as_secs_f64() >= 0.100);
        let switches = node.counters.total().sw(SwEvent::ContextSwitches);
        assert!(switches >= 2, "switches={switches}");
    }

    #[test]
    fn eight_tasks_fill_eight_cpus() {
        let mut node = quiet_node();
        let pids: Vec<Pid> = (0..8)
            .map(|i| node.spawn(compute_spec(&format!("t{i}"), 20)))
            .collect();
        node.run_for(SimDuration::from_millis(1));
        // All eight should be running on distinct CPUs.
        let cpus: std::collections::HashSet<u32> =
            pids.iter().map(|&p| node.tasks.get(p).cpu.0).collect();
        assert_eq!(cpus.len(), 8, "tasks spread across all CPUs");
        for &p in &pids {
            assert_eq!(node.tasks.get(p).state, TaskState::Running);
        }
    }

    #[test]
    fn smt_contention_slows_execution() {
        // Two tasks pinned to the same core (both SMT threads) take
        // longer than two tasks on different cores.
        let run_pair = |cpu_a: u32, cpu_b: u32| -> f64 {
            let mut node = quiet_node();
            let a = node.spawn(compute_spec("a", 20).with_affinity(CpuMask::single(CpuId(cpu_a))));
            let b = node.spawn(compute_spec("b", 20).with_affinity(CpuMask::single(CpuId(cpu_b))));
            assert!(node.run_until_exit(a, 10_000_000).is_complete());
            assert!(node.run_until_exit(b, 10_000_000).is_complete());
            node.now().as_secs_f64()
        };
        let same_core = run_pair(0, 1);
        let diff_core = run_pair(0, 2);
        assert!(
            same_core > diff_core * 1.3,
            "same-core {same_core} vs diff-core {diff_core}"
        );
    }

    #[test]
    fn kill_tree_reaps_running_and_blocked_descendants() {
        let mut node = quiet_node();
        let parent = node.spawn(TaskSpec::new(
            "root",
            Policy::Normal { nice: 0 },
            ScriptProgram::boxed(
                "root",
                vec![
                    Step::Fork(compute_spec("kid-a", 200)),
                    Step::Fork(compute_spec("kid-b", 200)),
                    Step::WaitChildren,
                ],
            ),
        ));
        node.run_for(SimDuration::from_millis(2));
        let kids: Vec<Pid> = node
            .tasks
            .iter()
            .filter(|t| t.parent == Some(parent))
            .map(|t| t.pid)
            .collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(
            node.tasks.get(parent).state,
            TaskState::Blocked(BlockReason::Children)
        );
        for &k in &kids {
            assert_eq!(node.tasks.get(k).state, TaskState::Running);
        }
        let when = node.now();
        assert_eq!(node.kill_tree(parent), 3, "root and both kids reaped");
        for &p in [parent].iter().chain(&kids) {
            let t = node.tasks.get(p);
            assert_eq!(t.state, TaskState::Dead);
            assert_eq!(t.exited_at, Some(when));
        }
        // The CPUs are genuinely free again: a fresh 10 ms job finishes
        // promptly instead of contending with 200 ms zombies.
        let start = node.now();
        let fresh = node.spawn(compute_spec("after", 10));
        assert!(node.run_until_exit(fresh, 1_000_000).is_complete());
        assert!((node.now() - start).as_secs_f64() < 0.016);
        // Killing an already-dead tree is a no-op.
        assert_eq!(node.kill_tree(parent), 0);
    }

    #[test]
    fn sleep_blocks_and_wakes() {
        let mut node = quiet_node();
        let pid = node.spawn(TaskSpec::new(
            "sleeper",
            Policy::Normal { nice: 0 },
            ScriptProgram::boxed(
                "sleeper",
                vec![
                    Step::Sleep(SimDuration::from_millis(5)),
                    Step::Compute(SimDuration::from_millis(1)),
                ],
            ),
        ));
        assert!(node.run_until_exit(pid, 1_000_000).is_complete());
        assert!(node.now().as_secs_f64() >= 0.006);
        let total = node.counters.total();
        assert!(total.sw(SwEvent::Wakeups) >= 1);
        assert!(total.sw(SwEvent::VoluntarySwitches) >= 1);
    }

    #[test]
    fn barrier_synchronises_tasks() {
        let mut node = quiet_node();
        let bar = crate::sync::BarrierId(1);
        let mk = |ms: u64| {
            vec![
                Step::Compute(SimDuration::from_millis(ms)),
                Step::Barrier {
                    id: bar,
                    parties: 2,
                },
                Step::Compute(SimDuration::from_millis(1)),
            ]
        };
        let fast = node.spawn(TaskSpec::new(
            "fast",
            Policy::Normal { nice: 0 },
            ScriptProgram::boxed("fast", mk(1)),
        ));
        let slow = node.spawn(TaskSpec::new(
            "slow",
            Policy::Normal { nice: 0 },
            ScriptProgram::boxed("slow", mk(20)),
        ));
        assert!(node.run_until_exit(fast, 10_000_000).is_complete());
        assert!(node.run_until_exit(slow, 10_000_000).is_complete());
        let f = node.tasks.get(fast).exited_at.unwrap();
        let s = node.tasks.get(slow).exited_at.unwrap();
        // Fast exits only marginally before slow: it waited at the barrier.
        assert!(f.as_secs_f64() > 0.020, "fast waited: {f}");
        assert!((s.as_secs_f64() - f.as_secs_f64()).abs() < 0.005);
    }

    #[test]
    fn fork_and_waitchildren() {
        let mut node = quiet_node();
        let child = compute_spec("child", 5);
        let parent = node.spawn(TaskSpec::new(
            "parent",
            Policy::Normal { nice: 0 },
            ScriptProgram::boxed("parent", vec![Step::Fork(child), Step::WaitChildren]),
        ));
        assert!(node.run_until_exit(parent, 1_000_000).is_complete());
        assert!(node.counters.total().sw(SwEvent::Forks) >= 1);
        // Parent outlives child.
        let child_pid = Pid(parent.0 + 1);
        let c = node.tasks.get(child_pid);
        assert_eq!(c.state, TaskState::Dead);
        assert!(c.exited_at.unwrap() <= node.tasks.get(parent).exited_at.unwrap());
    }

    #[test]
    fn rt_task_preempts_cfs_task() {
        let mut node = NodeBuilder::new(Topology::smp(1)).with_seed(3).build();
        let cfs = node.spawn(compute_spec("cfs", 100));
        node.run_for(SimDuration::from_millis(2));
        assert_eq!(node.tasks.get(cfs).state, TaskState::Running);
        let rt = node.spawn(TaskSpec::new(
            "rt",
            Policy::Fifo(50),
            ScriptProgram::boxed("rt", vec![Step::Compute(SimDuration::from_millis(5))]),
        ));
        node.run_for(SimDuration::from_micros(100));
        assert_eq!(node.tasks.get(rt).state, TaskState::Running);
        assert_eq!(node.tasks.get(cfs).state, TaskState::Runnable);
        assert!(node.run_until_exit(rt, 1_000_000).is_complete());
        assert!(node.run_until_exit(cfs, 10_000_000).is_complete());
    }

    #[test]
    fn spin_wait_satisfied_without_blocking() {
        let mut node = quiet_node();
        let ch = crate::sync::ChanId(7);
        let waiter = node.spawn(TaskSpec::new(
            "waiter",
            Policy::Normal { nice: 0 },
            ScriptProgram::boxed(
                "waiter",
                vec![
                    Step::WaitChanSpin {
                        chan: ch,
                        spin_limit: SimDuration::from_millis(50),
                    },
                    Step::Compute(SimDuration::from_millis(1)),
                ],
            ),
        ));
        let _notifier = node.spawn(TaskSpec::new(
            "notifier",
            Policy::Normal { nice: 0 },
            ScriptProgram::boxed(
                "notifier",
                vec![
                    Step::Compute(SimDuration::from_millis(2)),
                    Step::Notify {
                        chan: ch,
                        tokens: 1,
                    },
                ],
            ),
        ));
        assert!(node.run_until_exit(waiter, 1_000_000).is_complete());
        let t = node.tasks.get(waiter);
        // The waiter spun (busy) rather than blocking: its runtime
        // includes the ~2ms spin.
        assert!(t.total_runtime.as_secs_f64() > 0.002);
        // Finished shortly after the notify, not after the 50ms limit.
        assert!(node.now().as_secs_f64() < 0.010);
    }

    #[test]
    fn spin_expiry_falls_back_to_blocking() {
        let mut node = quiet_node();
        let ch = crate::sync::ChanId(8);
        let waiter = node.spawn(TaskSpec::new(
            "waiter",
            Policy::Normal { nice: 0 },
            ScriptProgram::boxed(
                "waiter",
                vec![
                    Step::WaitChanSpin {
                        chan: ch,
                        spin_limit: SimDuration::from_millis(1),
                    },
                    Step::Compute(SimDuration::from_millis(1)),
                ],
            ),
        ));
        let _notifier = node.spawn(TaskSpec::new(
            "notifier",
            Policy::Normal { nice: 0 },
            ScriptProgram::boxed(
                "notifier",
                vec![
                    Step::Sleep(SimDuration::from_millis(20)),
                    Step::Notify {
                        chan: ch,
                        tokens: 1,
                    },
                ],
            ),
        ));
        assert!(node.run_until_exit(waiter, 1_000_000).is_complete());
        let t = node.tasks.get(waiter);
        // Spun ~1ms then blocked ~19ms: runtime far below wall time.
        assert!(t.total_runtime.as_secs_f64() < 0.005);
        assert!(node.now().as_secs_f64() >= 0.020);
    }

    #[test]
    fn set_policy_moves_between_classes() {
        let mut node = NodeBuilder::new(Topology::smp(2)).with_seed(5).build();
        let a = node.spawn(compute_spec("a", 30));
        node.run_for(SimDuration::from_millis(1));
        node.set_policy(a, Policy::Fifo(10));
        node.drain();
        assert_eq!(node.tasks.get(a).policy, Policy::Fifo(10));
        assert!(node.run_until_exit(a, 10_000_000).is_complete());
    }

    #[test]
    fn affinity_forces_migration() {
        let mut node = quiet_node();
        let a = node.spawn(compute_spec("a", 30));
        node.run_for(SimDuration::from_millis(1));
        let old_cpu = node.tasks.get(a).cpu;
        let new_cpu = CpuId((old_cpu.0 + 2) % 8);
        let before = node.counters.total().sw(SwEvent::CpuMigrations);
        node.set_affinity(a, CpuMask::single(new_cpu));
        node.drain();
        assert_eq!(node.tasks.get(a).cpu, new_cpu);
        assert!(node.counters.total().sw(SwEvent::CpuMigrations) > before);
        assert!(node.run_until_exit(a, 10_000_000).is_complete());
        assert_eq!(node.tasks.get(a).cpu, new_cpu);
    }

    #[test]
    fn determinism_same_seed_same_fingerprint() {
        let run = |seed: u64| -> u64 {
            let mut node = NodeBuilder::new(Topology::power6_js22())
                .with_seed(seed)
                .with_noise(NoiseProfile::standard(8))
                .build();
            let pid = node.spawn(compute_spec("probe", 50));
            assert!(node.run_until_exit(pid, 50_000_000).is_complete());
            node.state_fingerprint()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn task_report_snapshots_stats() {
        let mut node = quiet_node();
        let pid = node.spawn(compute_spec("job", 5));
        assert!(node.run_until_exit(pid, 1_000_000).is_complete());
        let r = node.task_report(pid);
        assert_eq!(r.name, "job");
        assert_eq!(r.state, TaskState::Dead);
        assert!(r.total_runtime >= SimDuration::from_millis(5));
        assert!(r.nr_switches >= 1);
        assert!(format!("{r}").contains("job"));
    }

    #[test]
    fn ticks_are_counted() {
        let mut node = quiet_node();
        node.run_for(SimDuration::from_millis(100));
        let ticks = node.counters.total().sw(SwEvent::TimerTicks);
        // 8 CPUs x ~100 ticks.
        assert!((700..=900).contains(&ticks), "ticks={ticks}");
    }

    #[test]
    fn tickless_skips_tick_cost_for_lone_hpc() {
        // Two nodes, same HPC workload; the tickless one charges no tick
        // overhead while a lone HPC task runs. The builder asserts the
        // class kind, so wrap CFS mechanics in an Hpc-kind shim.
        struct Shim(crate::cfs::CfsClass);
        impl SchedClass for Shim {
            fn kind(&self) -> ClassKind {
                ClassKind::Hpc
            }
            fn init(&mut self, n: usize) {
                self.0.init(n)
            }
            fn enqueue(&mut self, c: CpuId, t: &mut Task, x: &SchedCtx<'_>, w: bool) {
                self.0.enqueue(c, t, x, w)
            }
            fn dequeue(&mut self, c: CpuId, t: &mut Task, x: &SchedCtx<'_>) {
                self.0.dequeue(c, t, x)
            }
            fn pick_next(&mut self, c: CpuId, tt: &TaskTable) -> Option<Pid> {
                self.0.pick_next(c, tt)
            }
            fn put_prev(&mut self, c: CpuId, t: &mut Task, x: &SchedCtx<'_>) {
                self.0.put_prev(c, t, x)
            }
            fn update_curr(&mut self, c: CpuId, t: &mut Task, r: SimDuration) {
                self.0.update_curr(c, t, r)
            }
            fn task_tick(&mut self, c: CpuId, t: &mut Task, x: &SchedCtx<'_>) -> bool {
                self.0.task_tick(c, t, x)
            }
            fn wakeup_preempt(&self, c: CpuId, a: &Task, b: &Task, x: &SchedCtx<'_>) -> bool {
                self.0.wakeup_preempt(c, a, b, x)
            }
            fn nr_queued(&self, c: CpuId) -> u32 {
                self.0.nr_queued(c)
            }
            fn queued_pids(&self, c: CpuId) -> Vec<Pid> {
                self.0.queued_pids(c)
            }
            fn select_cpu_fork(
                &mut self,
                t: &Task,
                p: CpuId,
                x: &SchedCtx<'_>,
                s: &LoadSnapshot,
                tt: &TaskTable,
            ) -> CpuId {
                self.0.select_cpu_fork(t, p, x, s, tt)
            }
        }
        let measure = |tickless: bool| -> u64 {
            let mut kc = KernelConfig::hpl();
            kc.tickless_single_hpc = tickless;
            let mut node = NodeBuilder::new(Topology::power6_js22())
                .with_config(kc)
                .with_hpc_class(Box::new(Shim(crate::cfs::CfsClass::new())))
                .with_seed(1)
                .build();
            let pid = node.spawn(TaskSpec::new(
                "hpc",
                crate::task::Policy::Hpc,
                crate::program::ScriptProgram::boxed(
                    "hpc",
                    vec![Step::Compute(SimDuration::from_millis(50))],
                ),
            ));
            assert!(node.run_until_exit(pid, 10_000_000).is_complete());
            node.counters.total().hw(HwEvent::TickOverheadNs)
        };
        let with_tick = measure(false);
        let without = measure(true);
        assert!(
            without < with_tick / 2,
            "tickless {without} should slash tick overhead {with_tick}"
        );
    }

    #[test]
    fn set_policy_on_blocked_task_applies_at_wakeup() {
        let mut node = quiet_node();
        let pid = node.spawn(TaskSpec::new(
            "sleeper",
            Policy::Normal { nice: 0 },
            crate::program::ScriptProgram::boxed(
                "s",
                vec![
                    Step::Sleep(SimDuration::from_millis(5)),
                    Step::Compute(SimDuration::from_millis(2)),
                ],
            ),
        ));
        node.run_for(SimDuration::from_millis(1));
        assert!(matches!(node.tasks.get(pid).state, TaskState::Blocked(_)));
        node.set_policy(pid, Policy::Fifo(30));
        assert!(node.run_until_exit(pid, 10_000_000).is_complete());
        assert_eq!(node.tasks.get(pid).policy, Policy::Fifo(30));
    }

    #[test]
    fn migration_counter_attribution() {
        // Balance migrations are a subset of all migrations.
        let mut node = NodeBuilder::new(Topology::power6_js22())
            .with_seed(13)
            .with_noise(NoiseProfile::standard(8))
            .build();
        node.run_for(SimDuration::from_secs(2));
        let total = node.counters.total();
        assert!(
            total.sw(SwEvent::LoadBalanceMigrations) <= total.sw(SwEvent::CpuMigrations),
            "balance migrations exceed total migrations"
        );
    }

    #[test]
    fn irq_stream_steals_time_from_everyone() {
        use crate::noise::IrqSpec;
        // A heavy IRQ load pinned to cpu0: a task pinned there slows
        // down; the same task on cpu4 does not.
        let run_on = |cpu: u32| -> f64 {
            let noise = NoiseProfile::quiet().with_irq(IrqSpec {
                rate_hz: 20_000.0,
                cost: SimDuration::from_micros(10),
                affinity: CpuMask::single(CpuId(0)),
            });
            let mut node = NodeBuilder::new(Topology::power6_js22())
                .with_noise(noise)
                .with_seed(5)
                .build();
            let start = node.now();
            let pid =
                node.spawn(compute_spec("victim", 50).with_affinity(CpuMask::single(CpuId(cpu))));
            assert!(node.run_until_exit(pid, 50_000_000).is_complete());
            node.tasks
                .get(pid)
                .exited_at
                .unwrap()
                .since(start)
                .as_secs_f64()
        };
        let on_irq_cpu = run_on(0);
        let elsewhere = run_on(4);
        // 20 kHz x 10 us = 20% steal.
        assert!(
            on_irq_cpu > elsewhere * 1.15,
            "irq victim {on_irq_cpu} vs bystander {elsewhere}"
        );
        // Counters recorded the interrupts.
        let noise = NoiseProfile::quiet().with_irq(IrqSpec {
            rate_hz: 1000.0,
            cost: SimDuration::from_micros(5),
            affinity: CpuMask::first_n(8),
        });
        let mut node = NodeBuilder::new(Topology::power6_js22())
            .with_noise(noise)
            .with_seed(6)
            .build();
        node.run_for(SimDuration::from_secs(1));
        let irqs = node.counters.total().sw(SwEvent::Irqs);
        assert!((700..=1300).contains(&irqs), "irqs={irqs}");
    }

    #[test]
    fn daemons_generate_noise() {
        let mut node = NodeBuilder::new(Topology::power6_js22())
            .with_seed(7)
            .with_noise(NoiseProfile::standard(8))
            .build();
        node.run_for(SimDuration::from_secs(5));
        let total = node.counters.total();
        assert!(total.sw(SwEvent::ContextSwitches) > 100);
        assert!(total.sw(SwEvent::Wakeups) > 50);
    }
}
