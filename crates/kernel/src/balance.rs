//! Load-balance scheduling (when to balance, not how).
//!
//! The *how* of balancing lives in each scheduling class
//! ([`crate::cfs::CfsClass`]'s periodic balance, RT push/pull). This
//! module provides the driver state Linux keeps in `rq->next_balance`:
//! each CPU remembers, per domain level, when it may next attempt a
//! periodic balance; the tick checks those deadlines. New-idle balancing
//! has no timer — it fires whenever a CPU is about to go idle — so only
//! the periodic path needs state.

use hpl_sim::{SimDuration, SimTime};
use hpl_topology::{CpuId, DomainHierarchy};

/// Per-CPU, per-domain-level periodic balance deadlines.
#[derive(Debug)]
pub struct BalanceClock {
    /// `next[cpu][level]` = earliest time of the next periodic balance.
    next: Vec<Vec<SimTime>>,
}

impl BalanceClock {
    /// Initialise from a domain hierarchy, staggering CPUs so that all
    /// CPUs do not balance in the same tick (Linux staggers with jiffies
    /// offsets for the same reason).
    pub fn new(domains: &DomainHierarchy) -> Self {
        let mut next = Vec::with_capacity(domains.cpus());
        for cpu in 0..domains.cpus() {
            let chain = domains.chain(CpuId(cpu as u32));
            let offsets: Vec<SimTime> = chain
                .iter()
                .map(|d| {
                    SimTime::ZERO
                        + SimDuration::from_nanos(
                            d.balance_interval_ns * (cpu as u64 + 1) / (domains.cpus() as u64 + 1),
                        )
                })
                .collect();
            next.push(offsets);
        }
        BalanceClock { next }
    }

    /// Linux's `sd->busy_factor`: a CPU that is busy running a task
    /// stretches its periodic balance intervals by this factor — load
    /// balancing is chiefly the idle CPUs' job.
    pub const BUSY_FACTOR: u64 = 32;

    /// Domain levels of `cpu` whose periodic balance is due at `now`;
    /// returns their indices and advances their deadlines. `busy`
    /// stretches the re-arm interval by [`Self::BUSY_FACTOR`].
    pub fn due_levels(
        &mut self,
        cpu: CpuId,
        now: SimTime,
        domains: &DomainHierarchy,
        busy: bool,
    ) -> Vec<usize> {
        let mut due = Vec::new();
        self.for_each_due(cpu, now, domains, busy, |level| due.push(level));
        due
    }

    /// Non-allocating [`due_levels`](Self::due_levels): invokes `f` for
    /// each due level after re-arming it. The tick fast-forward replays
    /// batched balance deadlines through this at kHz rates.
    pub fn for_each_due(
        &mut self,
        cpu: CpuId,
        now: SimTime,
        domains: &DomainHierarchy,
        busy: bool,
        mut f: impl FnMut(usize),
    ) {
        let chain = domains.chain(cpu);
        let slots = &mut self.next[cpu.index()];
        let factor = if busy { Self::BUSY_FACTOR } else { 1 };
        for (level, domain) in chain.iter().enumerate() {
            if now >= slots[level] {
                slots[level] = now + SimDuration::from_nanos(domain.balance_interval_ns * factor);
                f(level);
            }
        }
    }

    /// Next deadline of any level on `cpu` (diagnostics).
    pub fn next_deadline(&self, cpu: CpuId) -> Option<SimTime> {
        self.next[cpu.index()].iter().min().copied()
    }

    /// Read-only peek: would [`due_levels`](Self::due_levels) report any
    /// level due for `cpu` at time `t`? Used by the tick fast path to
    /// decide whether a tick can be skipped without touching the clocks.
    pub fn any_due(&self, cpu: CpuId, t: SimTime) -> bool {
        self.next[cpu.index()].iter().any(|&slot| t >= slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_topology::Topology;

    #[test]
    fn levels_become_due_and_rearm() {
        let topo = Topology::power6_js22();
        let domains = DomainHierarchy::build(&topo);
        let mut clock = BalanceClock::new(&domains);
        let cpu = CpuId(0);

        // Nothing due at t=0 (staggered offsets are positive).
        assert!(clock
            .due_levels(cpu, SimTime::ZERO, &domains, false)
            .is_empty());

        // Far in the future everything is due at once.
        let later = SimTime::ZERO + SimDuration::from_secs(1);
        let due = clock.due_levels(cpu, later, &domains, false);
        assert_eq!(due, vec![0, 1, 2]);

        // Immediately after, nothing is due again.
        assert!(clock
            .due_levels(cpu, later + SimDuration::from_nanos(1), &domains, false)
            .is_empty());

        // The SMT level (2ms interval) is due again before the PKG level.
        let due = clock.due_levels(cpu, later + SimDuration::from_millis(3), &domains, false);
        assert!(due.contains(&0));
        assert!(!due.contains(&2));
    }

    #[test]
    fn any_due_agrees_with_due_levels() {
        let topo = Topology::power6_js22();
        let domains = DomainHierarchy::build(&topo);
        let mut clock = BalanceClock::new(&domains);
        let cpu = CpuId(3);
        for ns in [0u64, 500_000, 1_000_000, 2_500_000, 1_000_000_000] {
            let t = SimTime::from_nanos(ns);
            let predicted = clock.any_due(cpu, t);
            // due_levels mutates; probe on a clone of the state by
            // checking prediction first, then advancing.
            let due = clock.due_levels(cpu, t, &domains, false);
            assert_eq!(predicted, !due.is_empty(), "at t={t}");
        }
    }

    #[test]
    fn cpus_are_staggered() {
        let topo = Topology::power6_js22();
        let domains = DomainHierarchy::build(&topo);
        let clock = BalanceClock::new(&domains);
        let d0 = clock.next_deadline(CpuId(0)).unwrap();
        let d1 = clock.next_deadline(CpuId(1)).unwrap();
        assert_ne!(d0, d1);
    }

    #[test]
    fn flat_machine_single_level() {
        let topo = Topology::smp(2);
        let domains = DomainHierarchy::build(&topo);
        let mut clock = BalanceClock::new(&domains);
        let due = clock.due_levels(
            CpuId(0),
            SimTime::ZERO + SimDuration::from_secs(1),
            &domains,
            false,
        );
        assert_eq!(due, vec![0]);
    }
}
