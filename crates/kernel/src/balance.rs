//! Load-balance scheduling (when to balance, not how).
//!
//! The *how* of balancing lives in each scheduling class
//! ([`crate::cfs::CfsClass`]'s periodic balance, RT push/pull). This
//! module provides the driver state Linux keeps in `rq->next_balance`:
//! each CPU remembers, per domain level, when it may next attempt a
//! periodic balance; the tick checks those deadlines. New-idle balancing
//! has no timer — it fires whenever a CPU is about to go idle — so only
//! the periodic path needs state.

use hpl_sim::{SimDuration, SimTime};
use hpl_topology::{CpuId, DomainHierarchy};

/// Per-CPU, per-domain-level periodic balance deadlines.
#[derive(Debug)]
pub struct BalanceClock {
    /// `next[cpu][level]` = earliest time of the next periodic balance.
    next: Vec<Vec<SimTime>>,
}

impl BalanceClock {
    /// Initialise from a domain hierarchy, staggering CPUs so that all
    /// CPUs do not balance in the same tick (Linux staggers with jiffies
    /// offsets for the same reason).
    pub fn new(domains: &DomainHierarchy) -> Self {
        let mut next = Vec::with_capacity(domains.cpus());
        for cpu in 0..domains.cpus() {
            let chain = domains.chain(CpuId(cpu as u32));
            let offsets: Vec<SimTime> = chain
                .iter()
                .map(|d| {
                    SimTime::ZERO
                        + SimDuration::from_nanos(
                            d.balance_interval_ns * (cpu as u64 + 1) / (domains.cpus() as u64 + 1),
                        )
                })
                .collect();
            next.push(offsets);
        }
        BalanceClock { next }
    }

    /// Linux's `sd->busy_factor`: a CPU that is busy running a task
    /// stretches its periodic balance intervals by this factor — load
    /// balancing is chiefly the idle CPUs' job.
    pub const BUSY_FACTOR: u64 = 32;

    /// Domain levels of `cpu` whose periodic balance is due at `now`;
    /// returns their indices and advances their deadlines. `busy`
    /// stretches the re-arm interval by [`Self::BUSY_FACTOR`].
    pub fn due_levels(
        &mut self,
        cpu: CpuId,
        now: SimTime,
        domains: &DomainHierarchy,
        busy: bool,
    ) -> Vec<usize> {
        let mut due = Vec::new();
        self.for_each_due(cpu, now, domains, busy, |level| due.push(level));
        due
    }

    /// Non-allocating [`due_levels`](Self::due_levels): invokes `f` for
    /// each due level after re-arming it. The tick fast-forward replays
    /// batched balance deadlines through this at kHz rates.
    pub fn for_each_due(
        &mut self,
        cpu: CpuId,
        now: SimTime,
        domains: &DomainHierarchy,
        busy: bool,
        mut f: impl FnMut(usize),
    ) {
        let chain = domains.chain(cpu);
        let slots = &mut self.next[cpu.index()];
        let factor = if busy { Self::BUSY_FACTOR } else { 1 };
        for (level, domain) in chain.iter().enumerate() {
            if now >= slots[level] {
                slots[level] = now + SimDuration::from_nanos(domain.balance_interval_ns * factor);
                f(level);
            }
        }
    }

    /// Arithmetically replay the balance side of `ticks` consecutive
    /// idle ticks of `cpu` at `first`, `first + period`, …, exactly as
    /// per-tick [`for_each_due`](Self::for_each_due) calls with
    /// `busy = false` would: each due level re-arms to its due tick plus
    /// the level's interval. Returns the total number of due
    /// `(tick, level)` pairs — the tick fast-forward charges one
    /// `LoadBalanceCalls` count and one balance-cost overhead per pair.
    ///
    /// Levels are independent and dues recur with a constant stride on
    /// the tick grid — after a due at tick `t` the next due tick is
    /// exactly `t + ⌈interval/period⌉·period` — so each level is a
    /// closed form, O(1) instead of O(dues), let alone O(ticks).
    pub fn replay_idle_dues(
        &mut self,
        cpu: CpuId,
        domains: &DomainHierarchy,
        first: SimTime,
        ticks: u64,
        period: SimDuration,
    ) -> u64 {
        debug_assert!(ticks > 0);
        let chain = domains.chain(cpu);
        let slots = &mut self.next[cpu.index()];
        let p = period.as_nanos();
        let last = first + SimDuration::from_nanos(p * (ticks - 1));
        let mut calls = 0u64;
        for (level, domain) in chain.iter().enumerate() {
            let due = slots[level];
            if due > last {
                continue;
            }
            // Earliest tick at or after the deadline; it exists because
            // `last` itself is on the tick grid.
            let t0 = if due <= first {
                first
            } else {
                first + SimDuration::from_nanos((due - first).as_nanos().div_ceil(p) * p)
            };
            let interval = SimDuration::from_nanos(domain.balance_interval_ns);
            let stride = SimDuration::from_nanos(domain.balance_interval_ns.div_ceil(p) * p);
            let n = (last - t0).as_nanos() / stride.as_nanos() + 1;
            calls += n;
            slots[level] = t0 + stride * (n - 1) + interval;
        }
        calls
    }

    /// Next deadline of any level on `cpu` (diagnostics).
    pub fn next_deadline(&self, cpu: CpuId) -> Option<SimTime> {
        self.next[cpu.index()].iter().min().copied()
    }

    /// Read-only peek: would [`due_levels`](Self::due_levels) report any
    /// level due for `cpu` at time `t`? Used by the tick fast path to
    /// decide whether a tick can be skipped without touching the clocks.
    pub fn any_due(&self, cpu: CpuId, t: SimTime) -> bool {
        self.next[cpu.index()].iter().any(|&slot| t >= slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_topology::Topology;

    #[test]
    fn levels_become_due_and_rearm() {
        let topo = Topology::power6_js22();
        let domains = DomainHierarchy::build(&topo);
        let mut clock = BalanceClock::new(&domains);
        let cpu = CpuId(0);

        // Nothing due at t=0 (staggered offsets are positive).
        assert!(clock
            .due_levels(cpu, SimTime::ZERO, &domains, false)
            .is_empty());

        // Far in the future everything is due at once.
        let later = SimTime::ZERO + SimDuration::from_secs(1);
        let due = clock.due_levels(cpu, later, &domains, false);
        assert_eq!(due, vec![0, 1, 2]);

        // Immediately after, nothing is due again.
        assert!(clock
            .due_levels(cpu, later + SimDuration::from_nanos(1), &domains, false)
            .is_empty());

        // The SMT level (2ms interval) is due again before the PKG level.
        let due = clock.due_levels(cpu, later + SimDuration::from_millis(3), &domains, false);
        assert!(due.contains(&0));
        assert!(!due.contains(&2));
    }

    #[test]
    fn any_due_agrees_with_due_levels() {
        let topo = Topology::power6_js22();
        let domains = DomainHierarchy::build(&topo);
        let mut clock = BalanceClock::new(&domains);
        let cpu = CpuId(3);
        for ns in [0u64, 500_000, 1_000_000, 2_500_000, 1_000_000_000] {
            let t = SimTime::from_nanos(ns);
            let predicted = clock.any_due(cpu, t);
            // due_levels mutates; probe on a clone of the state by
            // checking prediction first, then advancing.
            let due = clock.due_levels(cpu, t, &domains, false);
            assert_eq!(predicted, !due.is_empty(), "at t={t}");
        }
    }

    #[test]
    fn cpus_are_staggered() {
        let topo = Topology::power6_js22();
        let domains = DomainHierarchy::build(&topo);
        let clock = BalanceClock::new(&domains);
        let d0 = clock.next_deadline(CpuId(0)).unwrap();
        let d1 = clock.next_deadline(CpuId(1)).unwrap();
        assert_ne!(d0, d1);
    }

    /// The arithmetic replay must leave the clock byte-identical to
    /// per-tick `for_each_due` calls and report the same total dues,
    /// across phases, tick counts and both topologies' interval mixes.
    #[test]
    fn replay_idle_dues_matches_per_tick_calls() {
        for topo in [Topology::power6_js22(), Topology::smp(4)] {
            let domains = DomainHierarchy::build(&topo);
            let period = SimDuration::from_millis(1);
            for cpu in 0..domains.cpus() {
                let cpu = CpuId(cpu as u32);
                for (phase_ns, ticks) in [(1_000_000u64, 1u64), (1_500_000, 7), (3_000_000, 500)] {
                    let mut ticked = BalanceClock::new(&domains);
                    let mut replayed = BalanceClock::new(&domains);
                    let first = SimTime::from_nanos(phase_ns);
                    let mut per_tick = 0u64;
                    for k in 0..ticks {
                        let t = first + period * k;
                        ticked.for_each_due(cpu, t, &domains, false, |_| per_tick += 1);
                    }
                    let bulk = replayed.replay_idle_dues(cpu, &domains, first, ticks, period);
                    assert_eq!(per_tick, bulk, "{topo:?} cpu {cpu:?} ticks {ticks}");
                    assert_eq!(
                        ticked.next[cpu.index()],
                        replayed.next[cpu.index()],
                        "{topo:?} cpu {cpu:?} ticks {ticks}: deadlines diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn flat_machine_single_level() {
        let topo = Topology::smp(2);
        let domains = DomainHierarchy::build(&topo);
        let mut clock = BalanceClock::new(&domains);
        let due = clock.due_levels(
            CpuId(0),
            SimTime::ZERO + SimDuration::from_secs(1),
            &domains,
            false,
        );
        assert_eq!(due, vec![0]);
    }
}
