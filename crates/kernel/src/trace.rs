//! Scheduler event tracing — the simulator's `sched_switch`/
//! `sched_migrate_task` tracepoints, plus an ASCII Gantt renderer.
//!
//! Tracing is off by default (the experiment harness runs millions of
//! switches); enable it with [`crate::Node::enable_trace`] for
//! debugging, examples, and the Figure-1-style visualisations. Events
//! carry only ids and timestamps; rendering resolves names at the end.

use crate::sync::ChanId;
use crate::task::Pid;
use hpl_sim::SimTime;
use hpl_topology::CpuId;
use std::fmt::Write as _;

/// One traced scheduler event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `sched_switch`: `cpu` switched from `from` to `to` (`None` = idle).
    Switch {
        /// CPU where the switch happened.
        cpu: CpuId,
        /// Previous current.
        from: Option<Pid>,
        /// New current.
        to: Option<Pid>,
    },
    /// `sched_migrate_task`.
    Migrate {
        /// Task moved.
        pid: Pid,
        /// Source CPU.
        from: CpuId,
        /// Destination CPU.
        to: CpuId,
    },
    /// `sched_wakeup`.
    Wakeup {
        /// Task woken.
        pid: Pid,
        /// CPU it was enqueued on.
        cpu: CpuId,
    },
    /// A cross-node network message crossed this node's boundary: a
    /// captured outbound send (`out == true`) or an arriving delivery
    /// (`out == false`).
    Net {
        /// Channel the message targets.
        chan: ChanId,
        /// Tokens carried.
        tokens: u32,
        /// Direction: true = send captured here, false = delivered here.
        out: bool,
    },
}

/// A bounded in-memory trace.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    events: Vec<(SimTime, TraceEvent)>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Create a buffer bounded at `capacity` events (oldest kept; the
    /// drop counter records overflow, like a real trace ring's "lost
    /// events" marker — keeping the *head* preserves the window around
    /// the moment tracing was enabled).
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Record an event.
    pub fn record(&mut self, at: SimTime, ev: TraceEvent) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push((at, ev));
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[(SimTime, TraceEvent)] {
        &self.events
    }

    /// Iterate the recorded events in order. Prefer this (or the
    /// `IntoIterator` impl on `&TraceBuffer`) over indexing into
    /// [`Self::events`]: consumers stay decoupled from the storage.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, TraceEvent)> + '_ {
        self.events.iter().copied()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that did not fit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Reconstruct per-CPU occupancy over `[start, end)` and render an
    /// ASCII Gantt: one row per CPU, `width` columns, each cell showing
    /// the glyph of the task occupying the CPU at that instant
    /// (`.` = idle). `glyph` maps a pid to a display character.
    pub fn gantt(
        &self,
        ncpus: usize,
        start: SimTime,
        end: SimTime,
        width: usize,
        mut glyph: impl FnMut(Pid) -> char,
    ) -> String {
        assert!(end > start && width > 0);
        let span = end.since(start).as_nanos() as f64;
        // Build switch timelines per cpu.
        let mut timelines: Vec<Vec<(SimTime, Option<Pid>)>> = vec![Vec::new(); ncpus];
        for &(t, ev) in &self.events {
            if let TraceEvent::Switch { cpu, to, .. } = ev {
                if cpu.index() < ncpus {
                    timelines[cpu.index()].push((t, to));
                }
            }
        }
        let mut out = String::new();
        for (c, timeline) in timelines.iter().enumerate() {
            let _ = write!(out, "cpu{c} |");
            // Current occupant entering the window: last switch before start.
            let mut idx = timeline.partition_point(|&(t, _)| t <= start);
            let mut curr: Option<Pid> = idx.checked_sub(1).and_then(|i| timeline[i].1);
            for col in 0..width {
                let cell_end = start
                    + hpl_sim::SimDuration::from_nanos(
                        (span * (col + 1) as f64 / width as f64) as u64,
                    );
                while idx < timeline.len() && timeline[idx].0 <= cell_end {
                    curr = timeline[idx].1;
                    idx += 1;
                }
                out.push(match curr {
                    Some(p) => glyph(p),
                    None => '.',
                });
            }
            out.push_str("|\n");
        }
        let _ = writeln!(
            out,
            "      {start} .. {end}{}",
            if self.dropped > 0 {
                format!("  ({} events dropped)", self.dropped)
            } else {
                String::new()
            }
        );
        out
    }

    /// Count events matching a predicate (test/diagnostic helper).
    pub fn count(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }
}

impl<'a> IntoIterator for &'a TraceBuffer {
    type Item = (SimTime, TraceEvent);
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, (SimTime, TraceEvent)>>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn records_and_bounds() {
        let mut b = TraceBuffer::new(2);
        b.record(
            t(1),
            TraceEvent::Wakeup {
                pid: Pid(1),
                cpu: CpuId(0),
            },
        );
        b.record(
            t(2),
            TraceEvent::Wakeup {
                pid: Pid(2),
                cpu: CpuId(0),
            },
        );
        b.record(
            t(3),
            TraceEvent::Wakeup {
                pid: Pid(3),
                cpu: CpuId(0),
            },
        );
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 1);
        // Iterator and IntoIterator agree with the recorded order.
        let pids: Vec<u32> = b
            .iter()
            .map(|(_, e)| match e {
                TraceEvent::Wakeup { pid, .. } => pid.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pids, vec![1, 2]);
        assert_eq!((&b).into_iter().count(), 2);
    }

    #[test]
    fn gantt_renders_occupancy() {
        let mut b = TraceBuffer::new(100);
        // cpu0: idle, then A from 100 to 300, idle after.
        b.record(
            t(100),
            TraceEvent::Switch {
                cpu: CpuId(0),
                from: None,
                to: Some(Pid(1)),
            },
        );
        b.record(
            t(300),
            TraceEvent::Switch {
                cpu: CpuId(0),
                from: Some(Pid(1)),
                to: None,
            },
        );
        let g = b.gantt(1, t(0), t(400), 8, |_| 'A');
        let row = g.lines().next().unwrap();
        // 8 columns over 400 ns: A occupies cells covering 100..300.
        assert!(row.contains('A'));
        assert!(row.starts_with("cpu0 |"));
        assert!(row.contains('.'));
        // Occupied roughly half the window.
        let a_count = row.matches('A').count();
        assert!((3..=5).contains(&a_count), "row {row}");
    }

    #[test]
    fn gantt_carries_occupant_into_window() {
        let mut b = TraceBuffer::new(10);
        b.record(
            t(10),
            TraceEvent::Switch {
                cpu: CpuId(0),
                from: None,
                to: Some(Pid(7)),
            },
        );
        // Window starts after the switch: the task should fill the row.
        let g = b.gantt(1, t(100), t(200), 4, |_| 'X');
        assert!(g.lines().next().unwrap().contains("XXXX"));
    }

    #[test]
    fn count_filters() {
        let mut b = TraceBuffer::new(10);
        b.record(
            t(1),
            TraceEvent::Migrate {
                pid: Pid(1),
                from: CpuId(0),
                to: CpuId(1),
            },
        );
        b.record(
            t(2),
            TraceEvent::Wakeup {
                pid: Pid(1),
                cpu: CpuId(1),
            },
        );
        assert_eq!(b.count(|e| matches!(e, TraceEvent::Migrate { .. })), 1);
    }
}
