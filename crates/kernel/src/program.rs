//! Task behaviours.
//!
//! A [`Program`] is what a task *does*: every time the previous step
//! completes (a compute segment finishes, a wait is satisfied, a sleep
//! expires), the kernel asks the program for its next [`Step`]. MPI ranks,
//! user daemons, kernel threads, `mpiexec`, `chrt` and `perf` are all
//! programs — the same abstraction at every level, mirroring how the real
//! kernel is oblivious to what user code computes and only sees the
//! block/wake/fork pattern.

use crate::sync::{BarrierId, ChanId};
use crate::task::{Pid, Policy};
use hpl_sim::{Rng, SimDuration, SimTime};
use hpl_topology::CpuMask;
use std::fmt;

/// One step of task behaviour, executed by the kernel.
pub enum Step {
    /// Execute `work` of computation, expressed as the wall-clock time it
    /// would take on a dedicated CPU with a warm cache and an idle SMT
    /// sibling. The scheduler's decisions stretch this.
    Compute(SimDuration),
    /// Sleep for a duration (timer wait).
    Sleep(SimDuration),
    /// Consume one token from a channel, blocking if none is available.
    WaitChan(ChanId),
    /// Consume one token from a channel, busy-waiting (spinning on the
    /// CPU) for up to `spin_limit` before blocking — the MPI-library
    /// progress-engine behaviour.
    WaitChanSpin {
        /// Channel to wait on.
        chan: ChanId,
        /// Maximum busy-wait before yielding the CPU.
        spin_limit: SimDuration,
    },
    /// Deposit tokens on a channel, waking waiters.
    Notify {
        /// Channel to notify.
        chan: ChanId,
        /// Number of tokens to deposit.
        tokens: u32,
    },
    /// Deposit tokens on a channel whose consumer may live on another
    /// node. If the channel is registered as a network endpoint
    /// ([`crate::Node::register_net_channel`]) the message is captured
    /// into the node's outbound queue — `bytes` sizes it for the
    /// cluster interconnect's cost model — and a cluster driver routes
    /// it to the destination node, where the delivery event deposits
    /// the tokens. On an unregistered channel it degrades to exactly
    /// [`Step::Notify`] (the same-node shared-memory fast path), so
    /// programs can emit it unconditionally.
    NetSend {
        /// Destination channel (its waiters live on the destination
        /// node when registered as a network endpoint).
        chan: ChanId,
        /// Number of tokens to deposit on delivery.
        tokens: u32,
        /// Payload size, for the interconnect alpha/beta model.
        bytes: u64,
    },
    /// Arrive at a barrier of `parties` participants; blocks unless this
    /// arrival completes the barrier.
    Barrier {
        /// Barrier identity.
        id: BarrierId,
        /// Number of participants.
        parties: u32,
    },
    /// Arrive at a barrier, busy-waiting up to `spin_limit` before
    /// blocking.
    BarrierSpin {
        /// Barrier identity.
        id: BarrierId,
        /// Number of participants.
        parties: u32,
        /// Maximum busy-wait before yielding the CPU.
        spin_limit: SimDuration,
    },
    /// Fork a child task.
    Fork(TaskSpec),
    /// Change a task's scheduling policy (`sched_setscheduler`). `None`
    /// targets the caller.
    SetPolicy {
        /// Target task; `None` = self.
        target: Option<Pid>,
        /// New policy.
        policy: Policy,
    },
    /// Change a task's affinity (`sched_setaffinity`). `None` = self.
    SetAffinity {
        /// Target task; `None` = self.
        target: Option<Pid>,
        /// New mask.
        mask: CpuMask,
    },
    /// Block until every forked child has exited (`waitpid` loop).
    WaitChildren,
    /// Terminate.
    Exit,
    /// Publish an observability annotation into the node's
    /// [`crate::observe::SchedObserver`] stream — how user-space
    /// runtimes (the `hpl-coord` arbiter's lease grants) thread their
    /// decisions into the same trace as the kernel's own. Observers are
    /// pure sinks, so this never perturbs the simulation; with no sink
    /// attached it costs nothing.
    Emit(crate::observe::SchedEvent),
}

impl fmt::Debug for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Compute(d) => write!(f, "Compute({d})"),
            Step::Sleep(d) => write!(f, "Sleep({d})"),
            Step::WaitChan(c) => write!(f, "WaitChan({c})"),
            Step::WaitChanSpin { chan, spin_limit } => {
                write!(f, "WaitChanSpin({chan}, {spin_limit})")
            }
            Step::Notify { chan, tokens } => write!(f, "Notify({chan}, {tokens})"),
            Step::NetSend {
                chan,
                tokens,
                bytes,
            } => write!(f, "NetSend({chan}, {tokens}, {bytes}B)"),
            Step::Barrier { id, parties } => write!(f, "Barrier({id}, {parties})"),
            Step::BarrierSpin {
                id,
                parties,
                spin_limit,
            } => write!(f, "BarrierSpin({id}, {parties}, {spin_limit})"),
            Step::Fork(spec) => write!(f, "Fork({})", spec.name),
            Step::SetPolicy { target, policy } => write!(f, "SetPolicy({target:?}, {policy:?})"),
            Step::SetAffinity { target, mask } => write!(f, "SetAffinity({target:?}, {mask})"),
            Step::WaitChildren => write!(f, "WaitChildren"),
            Step::Exit => write!(f, "Exit"),
            Step::Emit(ev) => write!(f, "Emit({ev:?})"),
        }
    }
}

/// Context handed to a program when it is asked for its next step.
pub struct ProgCtx<'a> {
    /// The task's pid.
    pub pid: Pid,
    /// Current simulated time.
    pub now: SimTime,
    /// Deterministic randomness (the node's stream).
    pub rng: &'a mut Rng,
}

/// A task behaviour. Implementations must be deterministic given the
/// `ProgCtx` RNG stream, and `Send` because whole [`crate::Node`]s move
/// between host threads in the cluster's parallel co-simulation.
pub trait Program: Send {
    /// Produce the next step. Called again only after the previous step
    /// has fully completed.
    fn next_step(&mut self, ctx: &mut ProgCtx<'_>) -> Step;

    /// Short label for traces.
    fn describe(&self) -> &str {
        "program"
    }
}

/// Specification of a task to create (initial spawn or fork).
pub struct TaskSpec {
    /// `comm` name.
    pub name: String,
    /// Scheduling policy at birth.
    pub policy: Policy,
    /// Affinity mask at birth (empty = inherit all CPUs).
    pub affinity: CpuMask,
    /// Behaviour.
    pub program: Box<dyn Program>,
    /// Harness tag (e.g. "application task") copied to the task.
    pub tag: Option<u32>,
}

impl TaskSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, policy: Policy, program: Box<dyn Program>) -> Self {
        TaskSpec {
            name: name.into(),
            policy,
            affinity: CpuMask::EMPTY,
            program,
            tag: None,
        }
    }

    /// Set an affinity mask.
    pub fn with_affinity(mut self, mask: CpuMask) -> Self {
        self.affinity = mask;
        self
    }

    /// Set a harness tag.
    pub fn with_tag(mut self, tag: u32) -> Self {
        self.tag = Some(tag);
        self
    }
}

impl fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskSpec")
            .field("name", &self.name)
            .field("policy", &self.policy)
            .field("affinity", &self.affinity)
            .finish_non_exhaustive()
    }
}

/// A program from a closure: each call yields the next step. The simplest
/// way to write daemons and synthetic workloads.
pub struct FnProgram<F: FnMut(&mut ProgCtx<'_>) -> Step> {
    f: F,
    label: String,
}

impl<F: FnMut(&mut ProgCtx<'_>) -> Step> FnProgram<F> {
    /// Wrap a closure.
    pub fn new(label: impl Into<String>, f: F) -> Self {
        FnProgram {
            f,
            label: label.into(),
        }
    }

    /// Boxed, for direct use in a [`TaskSpec`].
    pub fn boxed(label: impl Into<String>, f: F) -> Box<dyn Program>
    where
        F: 'static + Send,
    {
        Box::new(FnProgram::new(label, f))
    }
}

impl<F: FnMut(&mut ProgCtx<'_>) -> Step + Send> Program for FnProgram<F> {
    fn next_step(&mut self, ctx: &mut ProgCtx<'_>) -> Step {
        (self.f)(ctx)
    }

    fn describe(&self) -> &str {
        &self.label
    }
}

/// A program that runs a fixed list of steps, then exits.
pub struct ScriptProgram {
    steps: std::vec::IntoIter<Step>,
    label: String,
}

impl ScriptProgram {
    /// Build from a step list. An `Exit` is appended implicitly when the
    /// script runs out.
    pub fn new(label: impl Into<String>, steps: Vec<Step>) -> Self {
        ScriptProgram {
            steps: steps.into_iter(),
            label: label.into(),
        }
    }

    /// Boxed, for direct use in a [`TaskSpec`].
    pub fn boxed(label: impl Into<String>, steps: Vec<Step>) -> Box<dyn Program> {
        Box::new(ScriptProgram::new(label, steps))
    }
}

impl Program for ScriptProgram {
    fn next_step(&mut self, _ctx: &mut ProgCtx<'_>) -> Step {
        self.steps.next().unwrap_or(Step::Exit)
    }

    fn describe(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with<'a>(rng: &'a mut Rng) -> ProgCtx<'a> {
        ProgCtx {
            pid: Pid(0),
            now: SimTime::ZERO,
            rng,
        }
    }

    #[test]
    fn script_yields_steps_then_exit() {
        let mut rng = Rng::new(1);
        let mut p = ScriptProgram::new(
            "s",
            vec![
                Step::Compute(SimDuration::from_millis(1)),
                Step::Sleep(SimDuration::from_millis(2)),
            ],
        );
        let mut ctx = ctx_with(&mut rng);
        assert!(matches!(p.next_step(&mut ctx), Step::Compute(_)));
        assert!(matches!(p.next_step(&mut ctx), Step::Sleep(_)));
        assert!(matches!(p.next_step(&mut ctx), Step::Exit));
        assert!(matches!(p.next_step(&mut ctx), Step::Exit));
    }

    #[test]
    fn fn_program_uses_rng_deterministically() {
        let make = || {
            FnProgram::new("d", |ctx: &mut ProgCtx<'_>| {
                Step::Compute(SimDuration::from_nanos(ctx.rng.range_u64(1, 100)))
            })
        };
        let mut r1 = Rng::new(7);
        let mut r2 = Rng::new(7);
        let mut p1 = make();
        let mut p2 = make();
        for _ in 0..10 {
            let s1 = {
                let mut c = ctx_with(&mut r1);
                p1.next_step(&mut c)
            };
            let s2 = {
                let mut c = ctx_with(&mut r2);
                p2.next_step(&mut c)
            };
            match (s1, s2) {
                (Step::Compute(a), Step::Compute(b)) => assert_eq!(a, b),
                _ => panic!("unexpected steps"),
            }
        }
    }

    #[test]
    fn task_spec_builders() {
        let spec = TaskSpec::new("rank0", Policy::Hpc, ScriptProgram::boxed("r", vec![]))
            .with_affinity(CpuMask::first_n(2))
            .with_tag(7);
        assert_eq!(spec.name, "rank0");
        assert_eq!(spec.tag, Some(7));
        assert_eq!(spec.affinity.count(), 2);
        let dbg = format!("{spec:?}");
        assert!(dbg.contains("rank0"));
    }

    #[test]
    fn step_debug_formats() {
        let s = Step::Barrier {
            id: BarrierId(3),
            parties: 8,
        };
        assert_eq!(format!("{s:?}"), "Barrier(barrier3, 8)");
        assert!(format!("{:?}", Step::WaitChildren).contains("WaitChildren"));
    }
}
