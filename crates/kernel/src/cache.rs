//! Per-core cache-warmth model — the *indirect* cost of scheduling.
//!
//! The paper attributes two indirect overheads to the scheduler: "a
//! non-HPC process may evict some of the HPC task's cache lines, causing
//! extra misses when the HPC task restarts", and "when the OS moves a
//! task to another CPU, that task may lose its cache contents and cannot
//! run at full speed until the cache rewarms".
//!
//! Model: each physical core's cache holds a *warmth fraction*
//! `w ∈ [0, 1]` per task. While a task runs on the core its warmth rises
//! exponentially toward 1 with time constant `cache_warm_tau`; every
//! other task's footprint on that core decays with `cache_evict_tau`.
//! Execution speed scales as `cold + (1 − cold) · w`. On migration the
//! task keeps a `shared_cache_retention` fraction of its warmth if source
//! and destination share any cache level (e.g. SMT siblings on POWER6, or
//! cores under a shared L3 on the x86 preset) and loses everything
//! otherwise — the exact mitigation footnote 2 of the paper describes.
//!
//! The model is deliberately capacity-free: warmths of different tasks on
//! one core are independent except for eviction-by-running, which keeps
//! the bookkeeping O(tasks-touched-this-core) and is sufficient to
//! produce the performance asymmetries the paper measures.

use crate::config::KernelConfig;
use crate::task::Pid;
use hpl_sim::SimDuration;
use hpl_topology::{CpuId, Topology};
use std::collections::HashMap;

/// Warmth below which a footprint entry is dropped.
const PRUNE_THRESHOLD: f64 = 1e-3;

/// Cache warmth state for every physical core.
#[derive(Debug)]
pub struct CacheModel {
    /// Per-core map of task → warmth fraction.
    cores: Vec<HashMap<Pid, f64>>,
}

impl CacheModel {
    /// Create the model for a machine.
    pub fn new(topo: &Topology) -> Self {
        CacheModel {
            cores: (0..topo.total_cores()).map(|_| HashMap::new()).collect(),
        }
    }

    /// Current warmth of `pid` on the core of `cpu`.
    pub fn warmth(&self, topo: &Topology, cpu: CpuId, pid: Pid) -> f64 {
        self.cores[topo.core_of(cpu) as usize]
            .get(&pid)
            .copied()
            .unwrap_or(0.0)
    }

    /// Execution-speed factor from cache state for `pid` running on `cpu`.
    pub fn speed_factor(&self, cfg: &KernelConfig, topo: &Topology, cpu: CpuId, pid: Pid) -> f64 {
        let w = self.warmth(topo, cpu, pid);
        cfg.cache_cold_factor + (1.0 - cfg.cache_cold_factor) * w
    }

    /// Account `dt` of `pid` running on `cpu`: its warmth rises, every
    /// other footprint on the core decays.
    pub fn run_for(
        &mut self,
        cfg: &KernelConfig,
        topo: &Topology,
        cpu: CpuId,
        pid: Pid,
        dt: SimDuration,
    ) {
        if dt.is_zero() {
            return;
        }
        let core = topo.core_of(cpu) as usize;
        let dt_s = dt.as_secs_f64();
        let warm_rate = (-dt_s / cfg.cache_warm_tau.as_secs_f64()).exp();
        let evict_rate = (-dt_s / cfg.cache_evict_tau.as_secs_f64()).exp();
        let map = &mut self.cores[core];
        for (&owner, w) in map.iter_mut() {
            if owner == pid {
                *w = 1.0 - (1.0 - *w) * warm_rate;
            } else {
                *w *= evict_rate;
            }
        }
        map.entry(pid).or_insert_with(|| 1.0 - warm_rate);
        map.retain(|_, w| *w > PRUNE_THRESHOLD);
    }

    /// Account a migration of `pid` from `from` to `to`.
    ///
    /// Within one core (SMT sibling move) the footprint is untouched.
    /// Across cores, the destination starts with `shared_cache_retention ×
    /// warmth` if the CPUs share a cache level, or 0 otherwise; the old
    /// footprint stays behind and decays naturally.
    pub fn migrate(
        &mut self,
        cfg: &KernelConfig,
        topo: &Topology,
        pid: Pid,
        from: CpuId,
        to: CpuId,
    ) {
        let from_core = topo.core_of(from) as usize;
        let to_core = topo.core_of(to) as usize;
        if from_core == to_core {
            return;
        }
        let old = self.cores[from_core].get(&pid).copied().unwrap_or(0.0);
        let retained = match topo.shared_cache_level(from, to) {
            Some(_) => old * cfg.shared_cache_retention,
            None => 0.0,
        };
        // Whatever the task had built on the destination core previously
        // (e.g. ping-pong migrations) may still be partially there.
        let existing = self.cores[to_core].get(&pid).copied().unwrap_or(0.0);
        let new_w = retained.max(existing);
        if new_w > PRUNE_THRESHOLD {
            self.cores[to_core].insert(pid, new_w);
        } else {
            self.cores[to_core].remove(&pid);
        }
    }

    /// Remove all footprints of a dead task.
    pub fn forget(&mut self, pid: Pid) {
        for core in &mut self.cores {
            core.remove(&pid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KernelConfig, Topology, CacheModel) {
        let topo = Topology::power6_js22();
        let model = CacheModel::new(&topo);
        (KernelConfig::default(), topo, model)
    }

    #[test]
    fn warmth_starts_cold() {
        let (cfg, topo, model) = setup();
        assert_eq!(model.warmth(&topo, CpuId(0), Pid(1)), 0.0);
        assert!(
            (model.speed_factor(&cfg, &topo, CpuId(0), Pid(1)) - cfg.cache_cold_factor).abs()
                < 1e-12
        );
    }

    #[test]
    fn running_warms_towards_one() {
        let (cfg, topo, mut model) = setup();
        let pid = Pid(1);
        model.run_for(&cfg, &topo, CpuId(0), pid, SimDuration::from_millis(1));
        let w1 = model.warmth(&topo, CpuId(0), pid);
        assert!(w1 > 0.0 && w1 < 1.0);
        // After many time constants: essentially warm.
        model.run_for(&cfg, &topo, CpuId(0), pid, SimDuration::from_millis(100));
        let w2 = model.warmth(&topo, CpuId(0), pid);
        assert!(w2 > 0.999, "w2={w2}");
        assert!(model.speed_factor(&cfg, &topo, CpuId(0), pid) > 0.999);
    }

    #[test]
    fn warming_is_monotonic() {
        let (cfg, topo, mut model) = setup();
        let pid = Pid(1);
        let mut last = 0.0;
        for _ in 0..20 {
            model.run_for(&cfg, &topo, CpuId(0), pid, SimDuration::from_micros(500));
            let w = model.warmth(&topo, CpuId(0), pid);
            assert!(w >= last);
            last = w;
        }
    }

    #[test]
    fn other_task_evicts() {
        let (cfg, topo, mut model) = setup();
        let hpc = Pid(1);
        let daemon = Pid(2);
        model.run_for(&cfg, &topo, CpuId(0), hpc, SimDuration::from_millis(50));
        let before = model.warmth(&topo, CpuId(0), hpc);
        // Daemon runs 5ms on the same core.
        model.run_for(&cfg, &topo, CpuId(0), daemon, SimDuration::from_millis(5));
        let after = model.warmth(&topo, CpuId(0), hpc);
        assert!(
            after < before * 0.5,
            "eviction too weak: {before} -> {after}"
        );
    }

    #[test]
    fn smt_siblings_share_warmth() {
        let (cfg, topo, mut model) = setup();
        let pid = Pid(1);
        model.run_for(&cfg, &topo, CpuId(0), pid, SimDuration::from_millis(50));
        // CPUs 0 and 1 are the same POWER6 core.
        assert!(model.warmth(&topo, CpuId(1), pid) > 0.99);
        // Migration between siblings keeps everything.
        model.migrate(&cfg, &topo, pid, CpuId(0), CpuId(1));
        assert!(model.warmth(&topo, CpuId(1), pid) > 0.99);
    }

    #[test]
    fn cross_core_migration_loses_everything_on_power6() {
        let (cfg, topo, mut model) = setup();
        let pid = Pid(1);
        model.run_for(&cfg, &topo, CpuId(0), pid, SimDuration::from_millis(50));
        model.migrate(&cfg, &topo, pid, CpuId(0), CpuId(2));
        // No shared cache between POWER6 cores: cold on arrival.
        assert_eq!(model.warmth(&topo, CpuId(2), pid), 0.0);
        // Old footprint still present on the old core (would be warm if
        // the task ping-pongs straight back).
        assert!(model.warmth(&topo, CpuId(0), pid) > 0.99);
    }

    #[test]
    fn shared_l3_retains_warmth() {
        let topo = Topology::xeon_2s4c2t();
        let cfg = KernelConfig::default();
        let mut model = CacheModel::new(&topo);
        let pid = Pid(1);
        model.run_for(&cfg, &topo, CpuId(0), pid, SimDuration::from_millis(50));
        // cpu0 → cpu2: different core, same socket, shared L3.
        model.migrate(&cfg, &topo, pid, CpuId(0), CpuId(2));
        let w = model.warmth(&topo, CpuId(2), pid);
        assert!((w - cfg.shared_cache_retention).abs() < 0.01, "w={w}");
        // Cross-socket: nothing.
        model.migrate(&cfg, &topo, pid, CpuId(2), CpuId(8));
        assert_eq!(model.warmth(&topo, CpuId(8), pid), 0.0);
    }

    #[test]
    fn ping_pong_return_keeps_residual() {
        let (cfg, topo, mut model) = setup();
        let pid = Pid(1);
        model.run_for(&cfg, &topo, CpuId(0), pid, SimDuration::from_millis(50));
        model.migrate(&cfg, &topo, pid, CpuId(0), CpuId(2));
        // Return immediately: the old footprint is still on core 0.
        model.migrate(&cfg, &topo, pid, CpuId(2), CpuId(0));
        assert!(model.warmth(&topo, CpuId(0), pid) > 0.99);
    }

    #[test]
    fn forget_clears_footprints() {
        let (cfg, topo, mut model) = setup();
        let pid = Pid(1);
        model.run_for(&cfg, &topo, CpuId(0), pid, SimDuration::from_millis(10));
        model.forget(pid);
        assert_eq!(model.warmth(&topo, CpuId(0), pid), 0.0);
    }
}
