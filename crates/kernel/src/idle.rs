//! The idle scheduling class.
//!
//! Always last in the class list. In Linux it contains exactly the
//! per-CPU idle task, so "the scheduler's search cannot fail". Here the
//! node represents the idle task implicitly (a CPU with no current task
//! is idle), so this class never offers a pid — reaching it is the
//! signal to the Scheduler Core that the CPU should enter idle, which is
//! also the moment new-idle balancing fires.

use crate::class::{ClassKind, SchedClass, SchedCtx};
use crate::task::{Pid, Task, TaskTable};
use hpl_sim::SimDuration;
use hpl_topology::CpuId;

/// The idle class: empty by construction.
#[derive(Debug, Default)]
pub struct IdleClass;

impl IdleClass {
    /// Create the idle class.
    pub fn new() -> Self {
        IdleClass
    }
}

impl SchedClass for IdleClass {
    fn kind(&self) -> ClassKind {
        ClassKind::Idle
    }

    fn init(&mut self, _ncpus: usize) {}

    fn enqueue(&mut self, _cpu: CpuId, task: &mut Task, _ctx: &SchedCtx<'_>, _wakeup: bool) {
        unreachable!("no task maps to the idle class: {}", task.pid);
    }

    fn dequeue(&mut self, _cpu: CpuId, task: &mut Task, _ctx: &SchedCtx<'_>) {
        unreachable!("no task maps to the idle class: {}", task.pid);
    }

    fn pick_next(&mut self, _cpu: CpuId, _tasks: &TaskTable) -> Option<Pid> {
        None
    }

    fn put_prev(&mut self, _cpu: CpuId, _task: &mut Task, _ctx: &SchedCtx<'_>) {}

    fn update_curr(&mut self, _cpu: CpuId, _task: &mut Task, _ran: SimDuration) {}

    fn task_tick(&mut self, _cpu: CpuId, _task: &mut Task, _ctx: &SchedCtx<'_>) -> bool {
        false
    }

    fn wakeup_preempt(
        &self,
        _cpu: CpuId,
        _curr: &Task,
        _woken: &Task,
        _ctx: &SchedCtx<'_>,
    ) -> bool {
        false
    }

    fn nr_queued(&self, _cpu: CpuId) -> u32 {
        0
    }

    fn queued_pids(&self, _cpu: CpuId) -> Vec<Pid> {
        Vec::new()
    }

    fn select_cpu_fork(
        &mut self,
        _task: &Task,
        parent_cpu: CpuId,
        _ctx: &SchedCtx<'_>,
        _snap: &crate::class::LoadSnapshot,
        _tasks: &TaskTable,
    ) -> CpuId {
        parent_cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_class_is_always_empty() {
        let mut idle = IdleClass::new();
        idle.init(8);
        let tt = TaskTable::new();
        assert_eq!(idle.pick_next(CpuId(0), &tt), None);
        assert_eq!(idle.nr_queued(CpuId(0)), 0);
        assert!(idle.queued_pids(CpuId(0)).is_empty());
        assert_eq!(idle.kind(), ClassKind::Idle);
    }
}
