//! # hpl-kernel — a discrete-event model of a cluster node's kernel
//!
//! This crate is the substrate the whole reproduction stands on: an
//! event-level simulation of the parts of Linux 2.6.34 that the paper
//! identifies as the sources of OS noise for HPC applications — the task
//! scheduler and its load balancer — together with the execution-cost
//! model (cache warmth, SMT contention, context-switch and tick overhead)
//! that turns scheduler decisions into execution-time effects.
//!
//! ## Structure (mirrors the kernel the paper modifies)
//!
//! * [`task`] — tasks, scheduling policies, the per-task scheduling entity.
//! * [`program`] — what a task *does*: a [`program::Program`] yields steps
//!   (compute, sleep, wait, notify, barrier, fork, setscheduler, exit)
//!   that the kernel executes; MPI ranks, daemons and launchers are all
//!   programs.
//! * [`sync`] — wait channels and barriers (the futex-level substrate the
//!   simulated MPI runtime is built on).
//! * [`class`] — the **Scheduling Class** framework: an ordered list of
//!   classes per CPU; the Scheduler Core asks each class in priority order
//!   for a task, exactly the structure HPL plugs into.
//! * [`cfs`] — the Completely Fair Scheduler class: vruntime, nice-level
//!   weights, sleeper fairness and wakeup preemption (the mechanism that
//!   lets a long-sleeping daemon preempt an HPC task regardless of nice).
//! * [`rt`] — the Real-Time class (SCHED_FIFO/SCHED_RR) with priority
//!   arrays and overload push/pull — the comparison point of Fig. 4.
//! * [`balance`] — scheduling-domain load balancing: periodic and
//!   new-idle balancing for CFS, the machinery whose "idle CPUs
//!   immediately try to pull tasks" behaviour the paper blames for
//!   migration noise.
//! * [`cache`] — per-core cache-warmth model giving migrations and
//!   preemptions their *indirect* cost.
//! * [`noise`] — the daemon population (per-CPU kthreads + global user
//!   daemons + rare housekeeping bursts) that generates the OS noise.
//! * [`node`] — [`node::Node`]: the event loop tying it all together, plus
//!   counter accounting compatible with `perf stat`.
//! * [`config`] — every tunable in one place, documented with the Linux
//!   default it mirrors.
//! * [`power`] — per-CPU energy accounting (the paper's power-dimension
//!   future work) derived from the busy-time counters.
//! * [`observe`] — the unified observability subsystem: the
//!   [`observe::SchedObserver`] sink trait wired into every kernel
//!   decision point, with ring-buffer, Chrome-trace and metrics sinks.
//! * [`trace`] — the bounded `sched_switch`-style event ring with an
//!   ASCII Gantt renderer (fed through [`observe::RingSink`]).
//! * [`analysis`] — reconstruct preemption episodes and residency from a
//!   trace (`perf sched`-style noise attribution).
//!
//! The HPL scheduling class itself lives in the `hpl-core` crate and
//! registers into this framework through [`class::SchedClass`], just as
//! the paper's class slots between RT and CFS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod balance;
pub mod cache;
pub mod cfs;
pub mod class;
pub mod config;
pub mod gang;
pub mod idle;
pub mod node;
pub mod noise;
pub mod observe;
pub mod power;
pub mod program;
pub mod rt;
pub mod sync;
pub mod task;
pub mod trace;

pub use class::{class_of_policy, ClassKind, LoadSnapshot, MigrationPlan, SchedClass, SchedCtx};
pub use config::{BalanceMode, KernelConfig};
pub use hpl_perf::RunOutcome;
pub use node::{NetMsg, Node, NodeBuilder};
pub use observe::{
    BalanceKind, ChromeTraceSink, DeactivateReason, MetricsSink, MigrateReason, ObserverId,
    PreemptVerdict, RingSink, SchedEvent, SchedObserver, TickOutcome,
};
pub use program::{FnProgram, ProgCtx, Program, Step, TaskSpec};
pub use sync::{BarrierId, ChanId};
pub use task::{Pid, Policy, Task, TaskState, TaskTable};
