//! Property tests for the simulated kernel: invariants that must hold
//! for *any* workload the node can run.

use hpl_kernel::noise::NoiseProfile;
use hpl_kernel::program::ScriptProgram;
use hpl_kernel::{KernelConfig, NodeBuilder, Policy, Step, TaskSpec, TaskState};
use hpl_sim::SimDuration;
use hpl_topology::{CpuMask, Topology};
use proptest::prelude::*;

/// A random small task mix: policy, work length, optional sleep-first.
#[derive(Debug, Clone)]
struct SpecGen {
    policy_sel: u8,
    work_us: u64,
    sleep_us: u64,
    affinity_bits: u8,
}

fn spec_strategy() -> impl Strategy<Value = SpecGen> {
    (0u8..4, 50u64..5000, 0u64..2000, 1u8..=255).prop_map(
        |(policy_sel, work_us, sleep_us, affinity_bits)| SpecGen {
            policy_sel,
            work_us,
            sleep_us,
            affinity_bits,
        },
    )
}

fn build_spec(g: &SpecGen, idx: usize, with_hpc: bool) -> TaskSpec {
    let policy = match g.policy_sel {
        0 => Policy::Normal { nice: 0 },
        1 => Policy::Normal { nice: 10 },
        2 => Policy::Fifo(40),
        _ if with_hpc => Policy::Hpc,
        _ => Policy::Batch { nice: 0 },
    };
    let mut steps = Vec::new();
    if g.sleep_us > 0 {
        steps.push(Step::Sleep(SimDuration::from_micros(g.sleep_us)));
    }
    steps.push(Step::Compute(SimDuration::from_micros(g.work_us)));
    TaskSpec::new(format!("t{idx}"), policy, ScriptProgram::boxed("w", steps))
        .with_affinity(CpuMask::from_bits(g.affinity_bits as u64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every spawned task eventually exits (no lost tasks, no deadlock)
    /// and consumes at least its nominal work.
    #[test]
    fn all_tasks_run_to_completion(specs in proptest::collection::vec(spec_strategy(), 1..12)) {
        let mut node = NodeBuilder::new(Topology::power6_js22())
            .with_config(KernelConfig::default())
            .with_seed(42)
            .build();
        let pids: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, g)| node.spawn(build_spec(g, i, false)))
            .collect();
        for &pid in &pids {
            assert!(node.run_until_exit(pid, 500_000_000).is_complete());
        }
        for (&pid, g) in pids.iter().zip(&specs) {
            let t = node.tasks.get(pid);
            prop_assert_eq!(t.state, TaskState::Dead);
            prop_assert!(
                t.total_runtime >= SimDuration::from_micros(g.work_us),
                "{} ran {} of {}us",
                t.name.clone(),
                t.total_runtime,
                g.work_us
            );
            // Affinity was honoured to the end.
            prop_assert!(t.affinity.contains(t.cpu));
        }
    }

    /// Determinism: any workload replayed with the same seed produces an
    /// identical scheduler-visible end state.
    #[test]
    fn any_workload_is_deterministic(
        specs in proptest::collection::vec(spec_strategy(), 1..8),
        seed in any::<u64>()
    ) {
        let run = |seed: u64| {
            let mut node = NodeBuilder::new(Topology::power6_js22())
                .with_noise(NoiseProfile::standard(8))
                .with_seed(seed)
                .build();
            let pids: Vec<_> = specs
                .iter()
                .enumerate()
                .map(|(i, g)| node.spawn(build_spec(g, i, false)))
                .collect();
            for &pid in &pids {
                assert!(node.run_until_exit(pid, 500_000_000).is_complete());
            }
            node.state_fingerprint()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Counter sanity for arbitrary runs: voluntary + involuntary
    /// switches never exceed total context switches; busy time never
    /// exceeds wall time x CPUs.
    #[test]
    fn counter_arithmetic_is_consistent(specs in proptest::collection::vec(spec_strategy(), 1..10)) {
        let mut node = NodeBuilder::new(Topology::power6_js22())
            .with_noise(NoiseProfile::standard(8))
            .with_seed(11)
            .build();
        let pids: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, g)| node.spawn(build_spec(g, i, false)))
            .collect();
        for &pid in &pids {
            assert!(node.run_until_exit(pid, 500_000_000).is_complete());
        }
        let total = node.counters.total();
        use hpl_perf::{HwEvent, SwEvent};
        let cs = total.sw(SwEvent::ContextSwitches);
        let vol = total.sw(SwEvent::VoluntarySwitches);
        let invol = total.sw(SwEvent::InvoluntaryPreemptions);
        prop_assert!(vol + invol <= cs, "{vol}+{invol} > {cs}");
        let busy = total.hw(HwEvent::BusyNs);
        let wall = node.now().as_nanos() * 8;
        prop_assert!(busy <= wall, "busy {busy} > wall x cpus {wall}");
    }
}
