//! Property tests for the weighted gang-slicing math (`hpl_kernel::gang`):
//! invariants that must hold for *any* gang set, share table, epoch
//! length and period index — the arbitration layers (kernel gang
//! controller, hpl-coord's user-space arbiter) both trust them.

use hpl_kernel::gang::{active_at, weighted_slices};
use proptest::prelude::*;

/// A random sorted gang set with strictly increasing ids and non-zero
/// shares (the two preconditions the kernel upholds by construction).
fn gang_set() -> impl Strategy<Value = Vec<(u64, u32)>> {
    proptest::collection::vec((1u64..1_000, 1u32..5_000), 1..6).prop_map(|raw| {
        let mut id = 0u64;
        raw.into_iter()
            .map(|(stride, share)| {
                id += stride;
                (id, share)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Slices always sum to the full rotation period, exactly — the
    /// budget is conserved to the nanosecond for every period index.
    #[test]
    fn slices_conserve_the_period(
        gangs in gang_set(),
        epoch_ns in 1u64..10_000_000,
        idx in 0u64..1_000,
    ) {
        let slices = weighted_slices(epoch_ns, &gangs, idx);
        let sum: u64 = slices.iter().map(|&(_, s)| s).sum();
        prop_assert_eq!(sum, epoch_ns * gangs.len() as u64);
        // And in gang-id order, one entry per gang.
        prop_assert_eq!(
            slices.iter().map(|&(g, _)| g).collect::<Vec<_>>(),
            gangs.iter().map(|&(g, _)| g).collect::<Vec<_>>()
        );
    }

    /// A larger share never yields a shorter slice (beyond the single
    /// remainder nanosecond a smaller gang may receive).
    #[test]
    fn slices_monotone_in_share(
        gangs in gang_set(),
        epoch_ns in 1u64..10_000_000,
        idx in 0u64..1_000,
    ) {
        let slices = weighted_slices(epoch_ns, &gangs, idx);
        for i in 0..gangs.len() {
            for j in 0..gangs.len() {
                if gangs[i].1 >= gangs[j].1 {
                    prop_assert!(
                        slices[i].1 + 1 >= slices[j].1,
                        "share {} got {} ns but share {} got {} ns",
                        gangs[i].1, slices[i].1, gangs[j].1, slices[j].1
                    );
                }
            }
        }
    }

    /// Equal shares degenerate to the legacy rotation: every slice is
    /// exactly one epoch, whatever the common share value is.
    #[test]
    fn equal_shares_slice_one_epoch_each(
        strides in proptest::collection::vec(1u64..100_000, 1..6),
        share in 1u32..5_000,
        epoch_ns in 1u64..10_000_000,
        idx in 0u64..1_000,
    ) {
        let mut id = 0u64;
        let gangs: Vec<(u64, u32)> = strides
            .into_iter()
            .map(|stride| {
                id += stride;
                (id, share)
            })
            .collect();
        let slices = weighted_slices(epoch_ns, &gangs, idx);
        for (g, s) in slices {
            prop_assert_eq!(s, epoch_ns, "gang {} slice", g);
        }
    }

    /// Walking `active_at` boundary to boundary from a period start
    /// tiles the period exactly: each gang is visited once, in order,
    /// for precisely its `weighted_slices` allotment, and the walk
    /// lands on the period end. This ties the two functions together —
    /// the kernel's timer rearm loop *is* this walk.
    #[test]
    fn boundary_walk_tiles_the_period(
        gangs in gang_set(),
        epoch_ns in 1u64..1_000_000,
        idx in 0u64..1_000,
    ) {
        let period = epoch_ns * gangs.len() as u64;
        let start = idx * period;
        let mut t = start;
        let mut visited = Vec::new();
        while t < start + period {
            let (g, next) = active_at(t, epoch_ns, &gangs);
            prop_assert!(next > t, "boundary must advance: t={} next={}", t, next);
            prop_assert!(next <= start + period, "boundary past period end");
            visited.push((g, next - t));
            t = next;
        }
        prop_assert_eq!(t, start + period, "walk must land on the period end");
        let expected: Vec<(u64, u64)> = weighted_slices(epoch_ns, &gangs, idx)
            .into_iter()
            .filter(|&(_, s)| s > 0)
            .collect();
        prop_assert_eq!(visited, expected);
    }

    /// `active_at` is a pure function of virtual time: any two queries
    /// inside the same slice agree on the gang and the boundary (this
    /// is what keeps lockstep co-simulated nodes aligned without
    /// messages, and serial vs pooled stepping bit-identical).
    #[test]
    fn active_at_is_stable_within_a_slice(
        gangs in gang_set(),
        epoch_ns in 1u64..1_000_000,
        now in 0u64..100_000_000,
    ) {
        let (g, next) = active_at(now, epoch_ns, &gangs);
        prop_assert!(gangs.iter().any(|&(id, _)| id == g));
        for probe in [now, (now + next - 1) / 2, next - 1] {
            if probe >= now {
                prop_assert_eq!(active_at(probe, epoch_ns, &gangs), (g, next));
            }
        }
    }
}
