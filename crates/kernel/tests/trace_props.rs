//! Property tests for the trace buffer, Gantt renderer and episode
//! reconstruction: invariants that must hold for arbitrary (well-formed)
//! switch sequences.

use hpl_kernel::analysis::TraceAnalysis;
use hpl_kernel::trace::{TraceBuffer, TraceEvent};
use hpl_kernel::Pid;
use hpl_sim::SimTime;
use hpl_topology::CpuId;
use proptest::prelude::*;

/// Generate a well-formed switch history for one CPU: alternating
/// occupants (None = idle) at strictly increasing times.
fn history_strategy() -> impl Strategy<Value = Vec<(u64, Option<u32>)>> {
    proptest::collection::vec((1u64..50, proptest::option::of(0u32..6)), 0..40).prop_map(|steps| {
        let mut t = 0u64;
        let mut out = Vec::new();
        let mut curr: Option<u32> = None;
        for (dt, next) in steps {
            t += dt;
            if next != curr {
                out.push((t, next));
                curr = next;
            }
        }
        out
    })
}

fn build_trace(history: &[(u64, Option<u32>)]) -> TraceBuffer {
    let mut b = TraceBuffer::new(10_000);
    let mut curr: Option<u32> = None;
    for &(t, next) in history {
        b.record(
            SimTime::from_nanos(t),
            TraceEvent::Switch {
                cpu: CpuId(0),
                from: curr.map(Pid),
                to: next.map(Pid),
            },
        );
        curr = next;
    }
    b
}

proptest! {
    /// Every Gantt row has exactly `width` cells regardless of history,
    /// and cells only show glyphs of tasks that appear in the history.
    #[test]
    fn gantt_rows_are_rectangular(history in history_strategy(), width in 1usize..80) {
        let b = build_trace(&history);
        let end = history.last().map(|&(t, _)| t + 10).unwrap_or(100);
        let g = b.gantt(1, SimTime::ZERO, SimTime::from_nanos(end), width, |p| {
            char::from_digit(p.0 % 10, 10).unwrap()
        });
        let row = g.lines().next().unwrap();
        let body = row
            .trim_start_matches("cpu0 |")
            .trim_end_matches('|');
        prop_assert_eq!(body.chars().count(), width, "row: {}", row);
        for ch in body.chars() {
            prop_assert!(ch == '.' || ch.is_ascii_digit());
        }
    }

    /// Episode reconstruction invariants: every preemption's stolen time
    /// is positive and within the window; victims and intruders differ;
    /// total residency never exceeds the window.
    #[test]
    fn analysis_invariants(history in history_strategy()) {
        let b = build_trace(&history);
        let end = history.last().map(|&(t, _)| t + 10).unwrap_or(100);
        let window_end = SimTime::from_nanos(end);
        let a = TraceAnalysis::analyse(&b, 1, SimTime::ZERO, window_end);
        for p in &a.preemptions {
            prop_assert!(p.stolen.as_nanos() > 0);
            prop_assert!(p.stolen.as_nanos() <= end);
            prop_assert!(p.victim != p.intruder);
        }
        let total: u64 = a.residency.iter().map(|r| r.running.as_nanos()).sum();
        prop_assert!(total <= end, "residency {total} > window {end}");
        // On one CPU the number of preemption episodes is bounded by the
        // number of switch events.
        prop_assert!(a.preemptions.len() <= history.len());
    }

    /// The buffer never exceeds its capacity and counts drops exactly.
    #[test]
    fn buffer_respects_capacity(n in 0usize..100, cap in 1usize..50) {
        let mut b = TraceBuffer::new(cap);
        for i in 0..n {
            b.record(
                SimTime::from_nanos(i as u64),
                TraceEvent::Wakeup { pid: Pid(0), cpu: CpuId(0) },
            );
        }
        prop_assert_eq!(b.len(), n.min(cap));
        prop_assert_eq!(b.iter().count(), n.min(cap));
        prop_assert_eq!(b.dropped() as usize, n.saturating_sub(cap));
    }
}
