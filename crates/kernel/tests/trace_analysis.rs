//! Integration: the trace/analysis pipeline against a live node — the
//! §III methodology (attribute slowdown to preemption episodes) must
//! agree with the counter subsystem it complements.

use hpl_kernel::analysis::TraceAnalysis;
use hpl_kernel::noise::NoiseProfile;
use hpl_kernel::program::ScriptProgram;
use hpl_kernel::{NodeBuilder, Policy, Step, TaskSpec};
use hpl_perf::SwEvent;
use hpl_sim::{SimDuration, SimTime};
use hpl_topology::{CpuMask, Topology};

#[test]
fn analysis_agrees_with_counters_on_a_noisy_run() {
    let mut node = NodeBuilder::new(Topology::power6_js22())
        .with_noise(NoiseProfile::standard(8))
        .with_seed(17)
        .build();
    node.enable_trace(1_000_000);
    let start = node.now();
    // Eight busy tasks so daemons must preempt to run.
    let pids: Vec<_> = (0..8)
        .map(|i| {
            node.spawn(TaskSpec::new(
                format!("busy{i}"),
                Policy::Normal { nice: 0 },
                ScriptProgram::boxed("busy", vec![Step::Compute(SimDuration::from_millis(400))]),
            ))
        })
        .collect();
    for &p in &pids {
        assert!(node.run_until_exit(p, 200_000_000).is_complete());
    }
    let end = node.now();

    let trace = node.trace().expect("tracing enabled");
    assert_eq!(trace.dropped(), 0, "buffer sized for the run");
    let analysis = TraceAnalysis::analyse(trace, 8, start, end);

    // Preemptions happened (daemons vs busy tasks) and their count is
    // bounded by the kernel's own involuntary-switch counter.
    let invol = node.counters.total().sw(SwEvent::InvoluntaryPreemptions) as usize;
    assert!(
        !analysis.preemptions.is_empty(),
        "a noisy run must show preemption episodes"
    );
    assert!(
        analysis.preemptions.len() <= invol + pids.len(),
        "episodes {} vs involuntary switches {invol}",
        analysis.preemptions.len()
    );

    // Stolen time is positive but far below the window length.
    let stolen = analysis.total_stolen_from(&pids);
    assert!(stolen > SimDuration::ZERO);
    assert!(stolen < end.since(start) * 8);

    // Residency bookkeeping: total running time across tasks cannot
    // exceed window x CPUs, and each busy task's residency roughly
    // matches its measured runtime.
    let total_running: f64 = analysis
        .residency
        .iter()
        .map(|r| r.running.as_secs_f64())
        .sum();
    assert!(total_running <= end.since(start).as_secs_f64() * 8.0 + 1e-6);
    for &p in &pids {
        let res = analysis
            .residency
            .iter()
            .find(|r| r.pid == p)
            .expect("busy task ran");
        let runtime = node.tasks.get(p).total_runtime.as_secs_f64();
        let diff = (res.running.as_secs_f64() - runtime).abs();
        assert!(
            diff < 0.02 * runtime.max(0.01),
            "{p:?}: residency {} vs runtime {runtime}",
            res.running.as_secs_f64()
        );
    }

    // Migration counts per task agree with the task's own counter.
    for (pid, &count) in &analysis.migrations {
        // Boot-time placements happen before tracing window's start for
        // daemons, so the trace count is a lower bound.
        assert!(
            (count as u64) <= node.tasks.get(*pid).nr_migrations,
            "{pid:?}"
        );
    }
}

#[test]
fn quiet_hpl_style_run_shows_no_preemption_of_the_app() {
    let mut node = NodeBuilder::new(Topology::power6_js22())
        .with_seed(3)
        .build();
    node.enable_trace(100_000);
    let start = node.now();
    let pid = node.spawn(
        TaskSpec::new(
            "solo",
            Policy::Normal { nice: 0 },
            ScriptProgram::boxed("solo", vec![Step::Compute(SimDuration::from_millis(50))]),
        )
        .with_affinity(CpuMask::first_n(8)),
    );
    assert!(node.run_until_exit(pid, 100_000_000).is_complete());
    let analysis = TraceAnalysis::analyse(
        node.trace().unwrap(),
        8,
        start,
        node.now() + SimDuration::from_nanos(1),
    );
    assert_eq!(analysis.preemptions_of(pid).count(), 0);
    assert_eq!(analysis.total_stolen_from(&[pid]), SimDuration::ZERO);
    let _ = SimTime::ZERO;
}
