//! # hpl-topology — machine topology model
//!
//! Describes the hardware a simulated node runs on, at exactly the
//! granularity the paper's HPL scheduler consumes: how many hardware
//! threads per core, cores per chip, chips per node, and which cache
//! levels are shared at which scope. The paper deliberately restricts
//! itself to "hardware information common to most platforms, like number
//! of cores/threads and cache parameters" — this crate is that information.
//!
//! * [`cpu`] — [`CpuId`] (a logical CPU = one hardware thread) and
//!   [`CpuMask`], the affinity bitmask type.
//! * [`machine`] — the socket/core/thread tree with per-level caches and
//!   presets, including [`machine::Topology::power6_js22`], the paper's
//!   dual-socket IBM POWER6 test machine.
//! * [`domains`] — the scheduling-domain hierarchy (SMT → MC → PKG) the
//!   load balancer walks, mirroring Linux's `sched_domain` construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod domains;
pub mod machine;

pub use cpu::{CpuId, CpuMask};
pub use domains::{DomainHierarchy, DomainLevel, SchedDomain};
pub use machine::{CacheLevel, CacheScope, Topology};
