//! Logical CPU identifiers and affinity masks.
//!
//! A *logical CPU* is one hardware thread — the unit the scheduler assigns
//! tasks to, matching Linux's numbering on the paper's POWER6 js22 (eight
//! logical CPUs: 2 sockets × 2 cores × 2 SMT threads). [`CpuMask`] is the
//! equivalent of `cpumask_t` / the `sched_setaffinity` bitmask, limited to
//! 64 CPUs, which comfortably covers the node sizes studied here.

use std::fmt;

/// Identifier of a logical CPU (hardware thread). Dense, starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuId(pub u32);

impl CpuId {
    /// The index as a usize, for array indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// A set of logical CPUs, as used for task affinity and scheduling-domain
/// spans. Backed by a `u64`; supports up to 64 logical CPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CpuMask(u64);

impl CpuMask {
    /// The empty set.
    pub const EMPTY: CpuMask = CpuMask(0);

    /// Maximum number of CPUs representable.
    pub const CAPACITY: u32 = 64;

    /// A mask containing the single CPU `cpu`.
    #[inline]
    pub fn single(cpu: CpuId) -> Self {
        debug_assert!(cpu.0 < Self::CAPACITY);
        CpuMask(1u64 << cpu.0)
    }

    /// A mask of the first `n` CPUs (`cpu0..cpu{n-1}`).
    #[inline]
    pub fn first_n(n: u32) -> Self {
        assert!(
            n <= Self::CAPACITY,
            "CpuMask::first_n({n}) exceeds capacity"
        );
        if n == 64 {
            CpuMask(u64::MAX)
        } else {
            CpuMask((1u64 << n) - 1)
        }
    }

    /// Build a mask from an iterator of CPU ids.
    pub fn from_cpus<I: IntoIterator<Item = CpuId>>(iter: I) -> Self {
        let mut m = CpuMask::EMPTY;
        for c in iter {
            m.set(c);
        }
        m
    }

    /// Raw bit representation.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Construct from raw bits.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        CpuMask(bits)
    }

    /// Add a CPU to the set.
    #[inline]
    pub fn set(&mut self, cpu: CpuId) {
        debug_assert!(cpu.0 < Self::CAPACITY);
        self.0 |= 1u64 << cpu.0;
    }

    /// Remove a CPU from the set.
    #[inline]
    pub fn clear(&mut self, cpu: CpuId) {
        self.0 &= !(1u64 << cpu.0);
    }

    /// Membership test.
    #[inline]
    pub const fn contains(self, cpu: CpuId) -> bool {
        cpu.0 < Self::CAPACITY && (self.0 >> cpu.0) & 1 == 1
    }

    /// Number of CPUs in the set.
    #[inline]
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True iff the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: CpuMask) -> CpuMask {
        CpuMask(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: CpuMask) -> CpuMask {
        CpuMask(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    #[inline]
    pub const fn difference(self, other: CpuMask) -> CpuMask {
        CpuMask(self.0 & !other.0)
    }

    /// True iff `self` is a subset of `other`.
    #[inline]
    pub const fn is_subset_of(self, other: CpuMask) -> bool {
        self.0 & !other.0 == 0
    }

    /// True iff the two sets share at least one CPU.
    #[inline]
    pub const fn intersects(self, other: CpuMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Lowest-numbered CPU in the set, if any.
    #[inline]
    pub fn first(self) -> Option<CpuId> {
        if self.0 == 0 {
            None
        } else {
            Some(CpuId(self.0.trailing_zeros()))
        }
    }

    /// Iterate over member CPUs in ascending order.
    pub fn iter(self) -> impl Iterator<Item = CpuId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                Some(CpuId(i))
            }
        })
    }
}

impl FromIterator<CpuId> for CpuMask {
    fn from_iter<I: IntoIterator<Item = CpuId>>(iter: I) -> Self {
        CpuMask::from_cpus(iter)
    }
}

impl fmt::Display for CpuMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", c.0)?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_contains() {
        let m = CpuMask::single(CpuId(3));
        assert!(m.contains(CpuId(3)));
        assert!(!m.contains(CpuId(2)));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn first_n() {
        let m = CpuMask::first_n(8);
        assert_eq!(m.count(), 8);
        assert!(m.contains(CpuId(0)) && m.contains(CpuId(7)) && !m.contains(CpuId(8)));
        assert_eq!(CpuMask::first_n(64).count(), 64);
        assert_eq!(CpuMask::first_n(0), CpuMask::EMPTY);
    }

    #[test]
    fn set_clear() {
        let mut m = CpuMask::EMPTY;
        m.set(CpuId(5));
        assert!(m.contains(CpuId(5)));
        m.clear(CpuId(5));
        assert!(m.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = CpuMask::from_cpus([CpuId(0), CpuId(1), CpuId(2)]);
        let b = CpuMask::from_cpus([CpuId(2), CpuId(3)]);
        assert_eq!(a.union(b).count(), 4);
        assert_eq!(a.intersection(b), CpuMask::single(CpuId(2)));
        assert_eq!(a.difference(b), CpuMask::from_cpus([CpuId(0), CpuId(1)]));
        assert!(a.intersects(b));
        assert!(CpuMask::single(CpuId(2)).is_subset_of(a));
        assert!(!a.is_subset_of(b));
    }

    #[test]
    fn iteration_order() {
        let m = CpuMask::from_cpus([CpuId(7), CpuId(1), CpuId(4)]);
        let v: Vec<u32> = m.iter().map(|c| c.0).collect();
        assert_eq!(v, vec![1, 4, 7]);
        assert_eq!(m.first(), Some(CpuId(1)));
        assert_eq!(CpuMask::EMPTY.first(), None);
    }

    #[test]
    fn display() {
        let m = CpuMask::from_cpus([CpuId(0), CpuId(2)]);
        assert_eq!(format!("{m}"), "{0,2}");
        assert_eq!(format!("{}", CpuId(3)), "cpu3");
    }

    #[test]
    fn from_iterator_trait() {
        let m: CpuMask = [CpuId(1), CpuId(3)].into_iter().collect();
        assert_eq!(m.count(), 2);
    }
}
