//! Scheduling-domain hierarchy.
//!
//! Linux builds, for every CPU, a chain of `sched_domain`s from innermost
//! (SMT siblings) through multi-core (cores of one chip) to package level
//! (whole machine). Periodic load balancing walks this chain with
//! per-level intervals (inner levels balance more often); idle balancing
//! walks it on demand. The paper's test system exposes exactly three
//! levels ("there are three domain levels: chip, core, and hardware
//! thread"), which this module reproduces from any [`Topology`].

use crate::cpu::{CpuId, CpuMask};
use crate::machine::Topology;

/// Hierarchy level of a scheduling domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DomainLevel {
    /// SMT siblings within one core.
    Smt,
    /// Cores within one socket (multi-core level).
    MultiCore,
    /// Sockets within the machine (package level).
    Package,
}

impl DomainLevel {
    /// Short name as used in reports (matches Linux's domain names).
    pub fn name(self) -> &'static str {
        match self {
            DomainLevel::Smt => "SMT",
            DomainLevel::MultiCore => "MC",
            DomainLevel::Package => "PKG",
        }
    }
}

/// One scheduling domain: a span of CPUs partitioned into balance groups.
///
/// Balancing at this domain equalises load *between groups*; balancing
/// within a group is the job of the next domain down.
#[derive(Debug, Clone)]
pub struct SchedDomain {
    /// Hierarchy level.
    pub level: DomainLevel,
    /// All CPUs this domain spans.
    pub span: CpuMask,
    /// The balance groups (children spans). Invariant: disjoint, non-empty,
    /// and their union equals `span`.
    pub groups: Vec<CpuMask>,
    /// Minimum interval between periodic balance attempts at this level,
    /// in nanoseconds. Inner (smaller) domains balance more frequently,
    /// as in Linux where the base interval scales with domain weight.
    pub balance_interval_ns: u64,
    /// Whether CPUs inside one group of this domain share a cache level —
    /// migrations within such a group carry reduced cache penalty.
    pub share_cache_in_group: bool,
}

impl SchedDomain {
    /// The group containing `cpu`, if any.
    pub fn group_of(&self, cpu: CpuId) -> Option<&CpuMask> {
        self.groups.iter().find(|g| g.contains(cpu))
    }
}

/// Per-CPU chains of scheduling domains, innermost first.
#[derive(Debug, Clone)]
pub struct DomainHierarchy {
    per_cpu: Vec<Vec<SchedDomain>>,
}

impl DomainHierarchy {
    /// Build the hierarchy for a topology.
    ///
    /// Degenerate levels are skipped exactly as Linux does: a machine
    /// without SMT gets no SMT domain; a single-socket machine gets no
    /// package domain; a machine with one core per socket gets no MC
    /// domain.
    pub fn build(topo: &Topology) -> Self {
        let mut per_cpu = Vec::with_capacity(topo.total_cpus() as usize);
        for raw in 0..topo.total_cpus() {
            let cpu = CpuId(raw);
            let mut chain = Vec::new();

            // SMT level: span = this core's threads, groups = each thread.
            if topo.threads_per_core() > 1 {
                let span = topo.smt_siblings(cpu);
                chain.push(SchedDomain {
                    level: DomainLevel::Smt,
                    span,
                    groups: span.iter().map(CpuMask::single).collect(),
                    balance_interval_ns: 1_000_000 * topo.threads_per_core() as u64,
                    share_cache_in_group: true,
                });
            }

            // MC level: span = this socket's CPUs, groups = each core.
            if topo.cores_per_socket() > 1 {
                let span = topo.socket_cpus(cpu);
                let first_core = topo.core_of(span.first().expect("socket span non-empty"));
                let groups = (0..topo.cores_per_socket())
                    .map(|c| topo.core_cpus(first_core + c))
                    .collect();
                chain.push(SchedDomain {
                    level: DomainLevel::MultiCore,
                    span,
                    groups,
                    balance_interval_ns: 1_000_000
                        * (topo.cores_per_socket() * topo.threads_per_core()) as u64,
                    // Within one MC group (= one core) SMT threads share L1/L2.
                    share_cache_in_group: true,
                });
            }

            // Package level: span = machine, groups = each socket.
            if topo.sockets() > 1 {
                let span = topo.all_cpus();
                let groups = (0..topo.sockets())
                    .map(|s| topo.socket_cpus(topo.cpu_id(s, 0, 0)))
                    .collect();
                chain.push(SchedDomain {
                    level: DomainLevel::Package,
                    span,
                    groups,
                    balance_interval_ns: 1_000_000 * topo.total_cpus() as u64 * 2,
                    share_cache_in_group: topo
                        .caches()
                        .iter()
                        .any(|c| matches!(c.scope, crate::machine::CacheScope::Socket)),
                });
            }

            per_cpu.push(chain);
        }
        DomainHierarchy { per_cpu }
    }

    /// The domain chain of `cpu`, innermost first.
    pub fn chain(&self, cpu: CpuId) -> &[SchedDomain] {
        &self.per_cpu[cpu.index()]
    }

    /// Number of CPUs covered.
    pub fn cpus(&self) -> usize {
        self.per_cpu.len()
    }

    /// Total number of domain levels for `cpu`.
    pub fn depth(&self, cpu: CpuId) -> usize {
        self.per_cpu[cpu.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn validate_domain(d: &SchedDomain) {
        assert!(!d.groups.is_empty());
        let mut union = CpuMask::EMPTY;
        for (i, g) in d.groups.iter().enumerate() {
            assert!(!g.is_empty(), "empty group {i}");
            assert!(
                !union.intersects(*g),
                "groups overlap at {i}: {union} vs {g}"
            );
            union = union.union(*g);
        }
        assert_eq!(union, d.span, "groups must tile the span");
    }

    #[test]
    fn power6_has_three_levels() {
        let topo = Topology::power6_js22();
        let h = DomainHierarchy::build(&topo);
        for cpu in topo.all_cpus().iter() {
            let chain = h.chain(cpu);
            assert_eq!(chain.len(), 3, "paper: chip, core, hardware-thread");
            assert_eq!(chain[0].level, DomainLevel::Smt);
            assert_eq!(chain[1].level, DomainLevel::MultiCore);
            assert_eq!(chain[2].level, DomainLevel::Package);
            for d in chain {
                validate_domain(d);
                assert!(d.span.contains(cpu));
            }
        }
    }

    #[test]
    fn chains_nest() {
        let topo = Topology::power6_js22();
        let h = DomainHierarchy::build(&topo);
        for cpu in topo.all_cpus().iter() {
            let chain = h.chain(cpu);
            for w in chain.windows(2) {
                assert!(
                    w[0].span.is_subset_of(w[1].span),
                    "inner domain must nest in outer"
                );
            }
            // Outermost spans the whole machine.
            assert_eq!(chain.last().unwrap().span, topo.all_cpus());
        }
    }

    #[test]
    fn smt_domain_groups_are_threads() {
        let topo = Topology::power6_js22();
        let h = DomainHierarchy::build(&topo);
        let smt = &h.chain(CpuId(4))[0];
        assert_eq!(smt.groups.len(), 2);
        assert!(smt.groups.iter().all(|g| g.count() == 1));
        assert_eq!(smt.span, topo.smt_siblings(CpuId(4)));
    }

    #[test]
    fn mc_domain_groups_are_cores() {
        let topo = Topology::power6_js22();
        let h = DomainHierarchy::build(&topo);
        let mc = &h.chain(CpuId(6))[1];
        assert_eq!(mc.groups.len(), 2);
        assert!(mc.groups.iter().all(|g| g.count() == 2));
    }

    #[test]
    fn package_groups_are_sockets() {
        let topo = Topology::power6_js22();
        let h = DomainHierarchy::build(&topo);
        let pkg = &h.chain(CpuId(0))[2];
        assert_eq!(pkg.groups.len(), 2);
        assert_eq!(pkg.groups[0], topo.socket_cpus(CpuId(0)));
        assert_eq!(pkg.groups[1], topo.socket_cpus(CpuId(4)));
    }

    #[test]
    fn flat_smp_has_single_level() {
        let topo = Topology::smp(4);
        let h = DomainHierarchy::build(&topo);
        let chain = h.chain(CpuId(0));
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].level, DomainLevel::MultiCore);
        validate_domain(&chain[0]);
    }

    #[test]
    fn intervals_grow_outwards() {
        let topo = Topology::power6_js22();
        let h = DomainHierarchy::build(&topo);
        let chain = h.chain(CpuId(0));
        for w in chain.windows(2) {
            assert!(w[0].balance_interval_ns <= w[1].balance_interval_ns);
        }
    }

    #[test]
    fn group_of_finds_member() {
        let topo = Topology::power6_js22();
        let h = DomainHierarchy::build(&topo);
        let mc = &h.chain(CpuId(0))[1];
        assert_eq!(mc.group_of(CpuId(1)), Some(&topo.core_cpus(0)));
        assert_eq!(mc.group_of(CpuId(6)), None);
    }

    #[test]
    fn single_core_no_smt_machine() {
        let topo = Topology::new("uni", 1, 1, 1, vec![]);
        let h = DomainHierarchy::build(&topo);
        assert_eq!(h.depth(CpuId(0)), 0);
    }
}
