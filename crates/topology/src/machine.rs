//! The socket/core/thread tree and cache hierarchy.
//!
//! [`Topology`] is an immutable description built once per simulated node.
//! The scheduler consults it for placement (threads-per-core,
//! cores-per-socket) and the cache model consults [`Topology::shared_cache_level`]
//! to decide whether a migration loses cache contents — the paper's
//! footnote 2: "this overhead is mitigated if the source and destination
//! cores share some levels of cache". The paper's POWER6 js22 shares
//! nothing between cores, so every inter-core migration there is a full
//! cache loss.

use crate::cpu::{CpuId, CpuMask};

/// Scope at which a cache level is shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheScope {
    /// Private to one hardware thread (rare; modelled for completeness).
    Thread,
    /// Shared by the SMT threads of one core (typical L1/L2).
    Core,
    /// Shared by all cores of a socket (typical L3).
    Socket,
    /// Shared machine-wide (e.g. an external board-level cache).
    System,
}

/// One level of the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevel {
    /// Level number (1 = closest to the core).
    pub level: u8,
    /// Sharing scope.
    pub scope: CacheScope,
    /// Capacity in bytes (informational; the warmth model is capacity-free
    /// but reports use it).
    pub size_bytes: u64,
}

/// Immutable machine description: `sockets × cores_per_socket ×
/// threads_per_core` logical CPUs, plus the cache hierarchy.
///
/// ```
/// use hpl_topology::{CpuId, Topology};
///
/// let js22 = Topology::power6_js22();
/// assert_eq!(js22.total_cpus(), 8);
/// // cpu0 and cpu1 are SMT siblings sharing L1/L2 ...
/// assert_eq!(js22.shared_cache_level(CpuId(0), CpuId(1)), Some(1));
/// // ... but cores on this blade share nothing (no L3).
/// assert_eq!(js22.shared_cache_level(CpuId(0), CpuId(2)), None);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    sockets: u32,
    cores_per_socket: u32,
    threads_per_core: u32,
    caches: Vec<CacheLevel>,
    name: String,
}

impl Topology {
    /// Build a topology. All dimension arguments must be non-zero and the
    /// total logical CPU count must fit in a [`CpuMask`].
    pub fn new(
        name: impl Into<String>,
        sockets: u32,
        cores_per_socket: u32,
        threads_per_core: u32,
        caches: Vec<CacheLevel>,
    ) -> Self {
        assert!(sockets > 0 && cores_per_socket > 0 && threads_per_core > 0);
        let total = sockets * cores_per_socket * threads_per_core;
        assert!(
            total <= CpuMask::CAPACITY,
            "{total} logical CPUs exceed CpuMask capacity"
        );
        let mut caches = caches;
        caches.sort_by_key(|c| c.level);
        Topology {
            sockets,
            cores_per_socket,
            threads_per_core,
            caches,
            name: name.into(),
        }
    }

    /// The paper's test machine: IBM js22 blade, two POWER6 chips, two
    /// cores per chip, two SMT threads per core — eight logical CPUs.
    /// L1/L2 private per core; this blade variant has **no** shared L3.
    pub fn power6_js22() -> Self {
        Topology::new(
            "IBM js22 (2x POWER6)",
            2,
            2,
            2,
            vec![
                CacheLevel {
                    level: 1,
                    scope: CacheScope::Core,
                    size_bytes: 64 * 1024,
                },
                CacheLevel {
                    level: 2,
                    scope: CacheScope::Core,
                    size_bytes: 4 * 1024 * 1024,
                },
            ],
        )
    }

    /// A flat SMP of `n` single-thread cores on one socket with a shared
    /// L2 — the simplest useful machine for unit tests.
    pub fn smp(n: u32) -> Self {
        Topology::new(
            format!("smp{n}"),
            1,
            n,
            1,
            vec![
                CacheLevel {
                    level: 1,
                    scope: CacheScope::Core,
                    size_bytes: 32 * 1024,
                },
                CacheLevel {
                    level: 2,
                    scope: CacheScope::Socket,
                    size_bytes: 8 * 1024 * 1024,
                },
            ],
        )
    }

    /// A Blue Gene/P-flavoured compute node: one chip, four single-thread
    /// cores, shared L3 — the target of the paper's "port HPL to Blue
    /// Gene compute nodes" future work, useful for LWK-comparison
    /// studies.
    pub fn bluegene_p() -> Self {
        Topology::new(
            "BlueGene/P node",
            1,
            4,
            1,
            vec![
                CacheLevel {
                    level: 1,
                    scope: CacheScope::Core,
                    size_bytes: 32 * 1024,
                },
                CacheLevel {
                    level: 3,
                    scope: CacheScope::Socket,
                    size_bytes: 8 * 1024 * 1024,
                },
            ],
        )
    }

    /// A contemporary-style dual-socket x86: 2 sockets × 4 cores × 2 SMT,
    /// private L1/L2, shared L3 per socket. Used by the ablation benches to
    /// show how shared last-level cache changes migration cost.
    pub fn xeon_2s4c2t() -> Self {
        Topology::new(
            "xeon 2s4c2t",
            2,
            4,
            2,
            vec![
                CacheLevel {
                    level: 1,
                    scope: CacheScope::Core,
                    size_bytes: 32 * 1024,
                },
                CacheLevel {
                    level: 2,
                    scope: CacheScope::Core,
                    size_bytes: 256 * 1024,
                },
                CacheLevel {
                    level: 3,
                    scope: CacheScope::Socket,
                    size_bytes: 12 * 1024 * 1024,
                },
            ],
        )
    }

    /// Human-readable machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of sockets (chips).
    pub fn sockets(&self) -> u32 {
        self.sockets
    }

    /// Cores per socket.
    pub fn cores_per_socket(&self) -> u32 {
        self.cores_per_socket
    }

    /// SMT threads per core.
    pub fn threads_per_core(&self) -> u32 {
        self.threads_per_core
    }

    /// Total physical cores.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Total logical CPUs (hardware threads).
    pub fn total_cpus(&self) -> u32 {
        self.total_cores() * self.threads_per_core
    }

    /// Mask of every logical CPU.
    pub fn all_cpus(&self) -> CpuMask {
        CpuMask::first_n(self.total_cpus())
    }

    /// Cache hierarchy, ordered by level.
    pub fn caches(&self) -> &[CacheLevel] {
        &self.caches
    }

    /// Logical CPU numbering: CPU id = `socket * cores_per_socket *
    /// threads_per_core + core_in_socket * threads_per_core + thread`.
    /// (Linux on POWER enumerates SMT siblings adjacently, which this
    /// matches.)
    pub fn cpu_id(&self, socket: u32, core_in_socket: u32, thread: u32) -> CpuId {
        debug_assert!(
            socket < self.sockets
                && core_in_socket < self.cores_per_socket
                && thread < self.threads_per_core
        );
        CpuId(
            socket * self.cores_per_socket * self.threads_per_core
                + core_in_socket * self.threads_per_core
                + thread,
        )
    }

    /// Physical core index (machine-wide) of a logical CPU.
    pub fn core_of(&self, cpu: CpuId) -> u32 {
        cpu.0 / self.threads_per_core
    }

    /// Socket index of a logical CPU.
    pub fn socket_of(&self, cpu: CpuId) -> u32 {
        cpu.0 / (self.cores_per_socket * self.threads_per_core)
    }

    /// SMT thread index of a logical CPU within its core.
    pub fn thread_of(&self, cpu: CpuId) -> u32 {
        cpu.0 % self.threads_per_core
    }

    /// Mask of all hardware threads on the same core as `cpu` (including
    /// `cpu` itself).
    pub fn smt_siblings(&self, cpu: CpuId) -> CpuMask {
        let core = self.core_of(cpu);
        let base = core * self.threads_per_core;
        CpuMask::from_cpus((0..self.threads_per_core).map(|t| CpuId(base + t)))
    }

    /// Mask of all logical CPUs on the same socket as `cpu`.
    pub fn socket_cpus(&self, cpu: CpuId) -> CpuMask {
        let per_socket = self.cores_per_socket * self.threads_per_core;
        let base = self.socket_of(cpu) * per_socket;
        CpuMask::from_cpus((0..per_socket).map(|t| CpuId(base + t)))
    }

    /// Mask of the logical CPUs of core `core` (machine-wide core index).
    pub fn core_cpus(&self, core: u32) -> CpuMask {
        let base = core * self.threads_per_core;
        CpuMask::from_cpus((0..self.threads_per_core).map(|t| CpuId(base + t)))
    }

    /// The innermost (lowest-numbered, i.e. fastest) cache level shared by
    /// two distinct logical CPUs, or `None` if they share nothing — the
    /// case in which a migration pays the full cold-cache penalty.
    pub fn shared_cache_level(&self, a: CpuId, b: CpuId) -> Option<u8> {
        let same_core = self.core_of(a) == self.core_of(b);
        let same_socket = self.socket_of(a) == self.socket_of(b);
        self.caches
            .iter()
            .find(|c| match c.scope {
                CacheScope::Thread => false,
                CacheScope::Core => same_core,
                CacheScope::Socket => same_socket,
                CacheScope::System => true,
            })
            .map(|c| c.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power6_dimensions() {
        let t = Topology::power6_js22();
        assert_eq!(t.sockets(), 2);
        assert_eq!(t.total_cores(), 4);
        assert_eq!(t.total_cpus(), 8);
        assert_eq!(t.all_cpus().count(), 8);
    }

    #[test]
    fn cpu_numbering_roundtrip() {
        let t = Topology::power6_js22();
        // Socket 1, core 1, thread 1 -> last CPU.
        assert_eq!(t.cpu_id(1, 1, 1), CpuId(7));
        assert_eq!(t.socket_of(CpuId(7)), 1);
        assert_eq!(t.core_of(CpuId(7)), 3);
        assert_eq!(t.thread_of(CpuId(7)), 1);
        assert_eq!(t.cpu_id(0, 0, 0), CpuId(0));
    }

    #[test]
    fn smt_siblings_power6() {
        let t = Topology::power6_js22();
        assert_eq!(
            t.smt_siblings(CpuId(0)),
            CpuMask::from_cpus([CpuId(0), CpuId(1)])
        );
        assert_eq!(
            t.smt_siblings(CpuId(5)),
            CpuMask::from_cpus([CpuId(4), CpuId(5)])
        );
    }

    #[test]
    fn socket_cpus_power6() {
        let t = Topology::power6_js22();
        assert_eq!(t.socket_cpus(CpuId(2)), CpuMask::first_n(4));
        assert_eq!(
            t.socket_cpus(CpuId(6)),
            CpuMask::from_cpus([CpuId(4), CpuId(5), CpuId(6), CpuId(7)])
        );
    }

    #[test]
    fn power6_shares_cache_only_within_core() {
        let t = Topology::power6_js22();
        // SMT siblings share L1.
        assert_eq!(t.shared_cache_level(CpuId(0), CpuId(1)), Some(1));
        // Different cores on the same chip: nothing shared (no L3 on js22).
        assert_eq!(t.shared_cache_level(CpuId(0), CpuId(2)), None);
        // Different chips: nothing.
        assert_eq!(t.shared_cache_level(CpuId(0), CpuId(4)), None);
    }

    #[test]
    fn xeon_shares_l3_within_socket() {
        let t = Topology::xeon_2s4c2t();
        assert_eq!(t.shared_cache_level(CpuId(0), CpuId(2)), Some(3));
        assert_eq!(t.shared_cache_level(CpuId(0), CpuId(8)), None);
        assert_eq!(t.shared_cache_level(CpuId(0), CpuId(1)), Some(1));
    }

    #[test]
    fn smp_flat() {
        let t = Topology::smp(4);
        assert_eq!(t.total_cpus(), 4);
        assert_eq!(t.smt_siblings(CpuId(2)).count(), 1);
        // Shared L2 at socket scope.
        assert_eq!(t.shared_cache_level(CpuId(0), CpuId(3)), Some(2));
    }

    #[test]
    fn bluegene_preset() {
        let t = Topology::bluegene_p();
        assert_eq!(t.total_cpus(), 4);
        assert_eq!(t.threads_per_core(), 1);
        // All cores share the L3.
        assert_eq!(t.shared_cache_level(CpuId(0), CpuId(3)), Some(3));
    }

    #[test]
    fn core_cpus() {
        let t = Topology::power6_js22();
        assert_eq!(t.core_cpus(1), CpuMask::from_cpus([CpuId(2), CpuId(3)]));
    }

    #[test]
    #[should_panic]
    fn zero_dimension_panics() {
        Topology::new("bad", 0, 1, 1, vec![]);
    }

    #[test]
    fn caches_sorted_by_level() {
        let t = Topology::xeon_2s4c2t();
        let levels: Vec<u8> = t.caches().iter().map(|c| c.level).collect();
        assert_eq!(levels, vec![1, 2, 3]);
    }
}
