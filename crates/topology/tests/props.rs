//! Property tests: mask algebra obeys set laws; domain hierarchies tile
//! correctly for arbitrary machine shapes.

use hpl_topology::{CpuId, CpuMask, DomainHierarchy, Topology};
use proptest::prelude::*;

fn mask_strategy() -> impl Strategy<Value = CpuMask> {
    any::<u64>().prop_map(CpuMask::from_bits)
}

proptest! {
    /// CpuMask algebra matches the underlying u64 bit model.
    #[test]
    fn mask_algebra_laws(a in mask_strategy(), b in mask_strategy(), c in mask_strategy()) {
        // De Morgan-ish via difference: a \ b = a ∩ ¬b.
        prop_assert_eq!(a.difference(b).bits(), a.bits() & !b.bits());
        // Union/intersection commute and associate.
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.intersection(b), b.intersection(a));
        prop_assert_eq!(a.union(b.union(c)), a.union(b).union(c));
        prop_assert_eq!(a.intersection(b.intersection(c)), a.intersection(b).intersection(c));
        // Distribution.
        prop_assert_eq!(
            a.intersection(b.union(c)),
            a.intersection(b).union(a.intersection(c))
        );
        // Subset relations.
        prop_assert!(a.intersection(b).is_subset_of(a));
        prop_assert!(a.is_subset_of(a.union(b)));
        // Count is cardinality.
        prop_assert_eq!(a.count(), a.bits().count_ones());
        // Iteration covers exactly the members.
        let rebuilt: CpuMask = a.iter().collect();
        prop_assert_eq!(rebuilt, a);
    }

    /// For any machine shape, every CPU's domain chain nests, tiles, and
    /// the smt/socket helpers agree with the domain structure.
    #[test]
    fn domains_tile_for_any_shape(
        sockets in 1u32..5,
        cores in 1u32..5,
        threads in 1u32..4
    ) {
        prop_assume!(sockets * cores * threads <= 64);
        let topo = Topology::new("prop", sockets, cores, threads, vec![]);
        let h = DomainHierarchy::build(&topo);
        for cpu in topo.all_cpus().iter() {
            let chain = h.chain(cpu);
            for d in chain {
                prop_assert!(d.span.contains(cpu));
                // Groups tile the span.
                let mut union = CpuMask::EMPTY;
                for g in &d.groups {
                    prop_assert!(!g.is_empty());
                    prop_assert!(!union.intersects(*g));
                    union = union.union(*g);
                }
                prop_assert_eq!(union, d.span);
            }
            // Chains nest from inner to outer.
            for w in chain.windows(2) {
                prop_assert!(w[0].span.is_subset_of(w[1].span));
            }
            if let Some(outer) = chain.last() {
                // With >1 socket the outermost spans the machine; with one
                // socket it spans at least the socket.
                prop_assert!(topo.socket_cpus(cpu).is_subset_of(outer.span)
                    || outer.span == topo.smt_siblings(cpu));
            }
            // Sibling helpers are consistent.
            prop_assert!(topo.smt_siblings(cpu).contains(cpu));
            prop_assert!(topo.socket_cpus(cpu).contains(cpu));
            prop_assert!(topo.smt_siblings(cpu).is_subset_of(topo.socket_cpus(cpu)));
        }
    }

    /// cpu_id / socket_of / core_of / thread_of round-trip.
    #[test]
    fn cpu_numbering_roundtrip(
        sockets in 1u32..5,
        cores in 1u32..5,
        threads in 1u32..4
    ) {
        prop_assume!(sockets * cores * threads <= 64);
        let topo = Topology::new("prop", sockets, cores, threads, vec![]);
        for s in 0..sockets {
            for c in 0..cores {
                for t in 0..threads {
                    let cpu = topo.cpu_id(s, c, t);
                    prop_assert_eq!(topo.socket_of(cpu), s);
                    prop_assert_eq!(topo.core_of(cpu), s * cores + c);
                    prop_assert_eq!(topo.thread_of(cpu), t);
                }
            }
        }
    }

    /// Shared-cache lookup is symmetric.
    #[test]
    fn shared_cache_symmetric(a in 0u32..8, b in 0u32..8) {
        let topo = Topology::xeon_2s4c2t();
        prop_assert_eq!(
            topo.shared_cache_level(CpuId(a), CpuId(b)),
            topo.shared_cache_level(CpuId(b), CpuId(a))
        );
    }
}
