//! Rank programs: MPI operations lowered onto kernel steps.
//!
//! A rank's behaviour is a flat list of [`MpiOp`]s (loops are unrolled at
//! construction). Each op expands, at run time, into one or more kernel
//! [`Step`]s: compute segments with per-rank jitter, LogP-style message
//! costs, and spin-then-block synchronisation through the kernel's
//! channels and barriers.

use hpl_kernel::{BarrierId, ChanId, ProgCtx, Program, Step};
use hpl_sim::SimDuration;
use std::collections::VecDeque;

/// Tunables of the simulated MPI library.
#[derive(Debug, Clone)]
pub struct MpiConfig {
    /// Busy-wait budget before a waiting rank yields its CPU (the MPICH
    /// progress-engine spin).
    pub spin_limit: SimDuration,
    /// Per-message latency (software + interconnect alpha term).
    pub alpha: SimDuration,
    /// Per-byte cost (1/bandwidth beta term).
    pub beta_ns_per_byte: f64,
    /// Relative standard deviation of per-rank compute jitter
    /// (application-intrinsic imbalance, not OS noise).
    pub compute_jitter: f64,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig {
            // MPICH's shared-memory progress engine busy-polls for a
            // long time (yielding, not blocking); 10 ms covers ordinary
            // rank skew so blocking only happens under real noise.
            spin_limit: SimDuration::from_millis(10),
            alpha: SimDuration::from_micros(20),
            beta_ns_per_byte: 1.0,
            compute_jitter: 0.002,
        }
    }
}

/// One MPI-level operation in a rank's script.
#[derive(Debug, Clone)]
pub enum MpiOp {
    /// Local computation of roughly `mean` (per-rank jitter applied).
    Compute {
        /// Mean full-speed duration.
        mean: SimDuration,
    },
    /// `MPI_Barrier` over the whole job.
    Barrier,
    /// `MPI_Allreduce` of `bytes` per rank (tree: `log2(p)` rounds).
    Allreduce {
        /// Payload size per rank.
        bytes: u64,
    },
    /// `MPI_Alltoall` of `bytes` to every peer (`p − 1` messages).
    Alltoall {
        /// Payload per destination.
        bytes: u64,
    },
    /// Ring neighbour exchange: send to and receive from both ring
    /// neighbours (`bytes` each way) — the boundary-exchange pattern used
    /// by lu and mg.
    NeighborExchange {
        /// Payload per neighbour.
        bytes: u64,
    },
    /// `MPI_Bcast` from rank 0 (binomial tree, synchronising variant).
    Bcast {
        /// Payload size.
        bytes: u64,
    },
    /// `MPI_Reduce` to rank 0 (binomial tree, synchronising variant).
    Reduce {
        /// Payload per rank.
        bytes: u64,
    },
    /// A true pipelined wavefront sweep: rank `r` waits for rank `r−1`'s
    /// token, does its message processing, and releases rank `r+1`. No
    /// global barrier — the pipeline skew is real, which is what makes
    /// wavefront codes exquisitely sensitive to one delayed rank.
    Wavefront {
        /// Payload forwarded along the pipeline.
        bytes: u64,
    },
    /// A coordinated application checkpoint: quiesce (sync phase), write
    /// the checkpoint (`cost` of per-rank I/O-bound work), then arrive
    /// at a per-node checkpoint barrier whose generation counter is the
    /// *observable* record of how many checkpoints this node has
    /// committed — a batch driver reads it off surviving nodes after a
    /// crash to decide how much work a requeued job may skip
    /// (restart-from-last-checkpoint).
    Checkpoint {
        /// Per-rank cost of writing the checkpoint.
        cost: SimDuration,
    },
}

/// A complete MPI job: per-rank script plus config.
///
/// ```
/// use hpl_mpi::{JobSpec, MpiOp};
/// use hpl_sim::SimDuration;
///
/// let job = JobSpec::new(8, JobSpec::repeat(10, &[
///     MpiOp::Compute { mean: SimDuration::from_millis(5) },
///     MpiOp::Allreduce { bytes: 8 },
/// ]));
/// assert_eq!(job.total_compute(), SimDuration::from_millis(50));
/// ```
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Number of ranks.
    pub nprocs: u32,
    /// The (identical SPMD) operation list each rank executes.
    pub ops: Vec<MpiOp>,
    /// MPI library tunables.
    pub config: MpiConfig,
    /// Base for channel/barrier id allocation; jobs on one node must use
    /// disjoint bases (the launcher offsets by job index).
    pub id_base: u64,
    /// Number of cluster nodes the job spans (block placement:
    /// `nprocs / nodes` consecutive ranks per node). 1 = the classic
    /// single-node job, whose step stream is unchanged.
    pub nodes: u32,
}

impl JobSpec {
    /// Create a job with default MPI config.
    pub fn new(nprocs: u32, ops: Vec<MpiOp>) -> Self {
        assert!(nprocs > 0);
        JobSpec {
            nprocs,
            ops,
            config: MpiConfig::default(),
            id_base: 0,
            nodes: 1,
        }
    }

    /// Override the MPI config.
    pub fn with_config(mut self, config: MpiConfig) -> Self {
        self.config = config;
        self
    }

    /// Spread the job over `nodes` cluster nodes with block placement
    /// (ranks `[n·rpn, (n+1)·rpn)` on node `n`, `rpn = nprocs/nodes`).
    /// `nprocs` must divide evenly.
    pub fn with_nodes(mut self, nodes: u32) -> Self {
        assert!(nodes > 0, "a job needs at least one node");
        assert_eq!(
            self.nprocs % nodes,
            0,
            "nprocs {} must divide evenly over {} nodes",
            self.nprocs,
            nodes
        );
        self.nodes = nodes;
        self
    }

    /// Set the channel/barrier id base. Two jobs running concurrently on
    /// one node must use disjoint bases; ids
    /// `base ..= base + nprocs² + 2·nodes` are reserved by a job
    /// (pairwise channels, per-node local barriers, per-node release
    /// channels), plus `nodes` more checkpoint-barrier ids when the op
    /// list checkpoints.
    pub fn with_id_base(mut self, base: u64) -> Self {
        self.id_base = base;
        self
    }

    /// True iff the op list contains a [`MpiOp::Checkpoint`].
    pub fn has_checkpoints(&self) -> bool {
        self.ops
            .iter()
            .any(|op| matches!(op, MpiOp::Checkpoint { .. }))
    }

    /// The inclusive id range this job reserves (see
    /// [`Self::with_id_base`]). Concurrent jobs sharing a node must have
    /// disjoint ranges; a batch driver allocates bases by striding past
    /// the previous job's range end. The per-node checkpoint-barrier ids
    /// are reserved **only** for checkpointing jobs, so the id layout of
    /// every pre-existing job is untouched.
    pub fn id_range(&self) -> std::ops::RangeInclusive<u64> {
        let ckpt = if self.has_checkpoints() {
            self.nodes as u64
        } else {
            0
        };
        self.id_base..=self.id_base + (self.nprocs as u64).pow(2) + 2 * self.nodes as u64 + ckpt
    }

    /// Per-node checkpoint barrier: its kernel-side generation counter
    /// equals the number of checkpoints the node's ranks have committed.
    pub fn ckpt_barrier_id(&self, node: u32) -> BarrierId {
        debug_assert!(node < self.nodes);
        BarrierId(self.id_base + 1 + (self.nprocs as u64).pow(2) + (2 * self.nodes + node) as u64)
    }

    /// Ranks placed on each node.
    pub fn ranks_per_node(&self) -> u32 {
        self.nprocs / self.nodes
    }

    /// Node index hosting `rank` (block placement).
    pub fn node_of(&self, rank: u32) -> u32 {
        debug_assert!(rank < self.nprocs);
        rank / self.ranks_per_node()
    }

    /// The node-leader rank of `node` (its lowest-numbered rank; leaders
    /// run the inter-node rounds of hierarchical collectives).
    pub fn leader_of(&self, node: u32) -> u32 {
        debug_assert!(node < self.nodes);
        node * self.ranks_per_node()
    }

    /// Ranks hosted on `node`, as an inclusive-exclusive range.
    pub fn ranks_on(&self, node: u32) -> std::ops::Range<u32> {
        let rpn = self.ranks_per_node();
        node * rpn..(node + 1) * rpn
    }

    /// Per-node barrier id for the intra-node round of hierarchical
    /// collectives.
    pub fn local_barrier_id(&self, node: u32) -> BarrierId {
        debug_assert!(node < self.nodes);
        BarrierId(self.id_base + 1 + (self.nprocs as u64).pow(2) + node as u64)
    }

    /// Per-node release channel: the node leader deposits one token per
    /// local non-leader once the inter-node rounds complete.
    pub fn release_chan(&self, node: u32) -> ChanId {
        debug_assert!(node < self.nodes);
        ChanId(self.id_base + 1 + (self.nprocs as u64).pow(2) + (self.nodes + node) as u64)
    }

    /// Channels a cluster driver must register as network endpoints on
    /// `node`: every `src → dst` pair whose sender lives on `node` and
    /// whose receiver lives elsewhere. A `NetSend` on one of these is
    /// captured for interconnect routing instead of notifying locally.
    pub fn cross_node_channels(&self, node: u32) -> Vec<ChanId> {
        let mut out = Vec::new();
        if self.nodes == 1 {
            return out;
        }
        for src in self.ranks_on(node) {
            for dst in 0..self.nprocs {
                if self.node_of(dst) != node {
                    out.push(self.chan_id(src, dst));
                }
            }
        }
        out
    }

    /// Destination node of a cross-node channel id, or `None` if the id
    /// is not one of this job's pairwise channels (routing table for the
    /// cluster driver).
    pub fn chan_dst_node(&self, chan: ChanId) -> Option<u32> {
        let lo = self.id_base + 1;
        let hi = lo + (self.nprocs as u64).pow(2);
        if !(lo..hi).contains(&chan.0) {
            return None;
        }
        let dst = ((chan.0 - lo) % self.nprocs as u64) as u32;
        Some(self.node_of(dst))
    }

    /// Unroll a loop: repeat `body` `times` times (helper for workload
    /// construction).
    pub fn repeat(times: u32, body: &[MpiOp]) -> Vec<MpiOp> {
        let mut out = Vec::with_capacity(body.len() * times as usize);
        for _ in 0..times {
            out.extend_from_slice(body);
        }
        out
    }

    /// The job-wide barrier id.
    pub fn barrier_id(&self) -> BarrierId {
        BarrierId(self.id_base)
    }

    /// Channel id for messages `src → dst`.
    pub fn chan_id(&self, src: u32, dst: u32) -> ChanId {
        debug_assert!(src < self.nprocs && dst < self.nprocs);
        ChanId(self.id_base + 1 + (src * self.nprocs + dst) as u64)
    }

    /// Total full-speed compute per rank (calibration helper).
    pub fn total_compute(&self) -> SimDuration {
        self.ops
            .iter()
            .map(|op| match op {
                MpiOp::Compute { mean } => *mean,
                _ => SimDuration::ZERO,
            })
            .fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// The program one rank executes.
pub struct RankProgram {
    rank: u32,
    nprocs: u32,
    nodes: u32,
    ops: Vec<MpiOp>,
    config: MpiConfig,
    id_base: u64,
    op_idx: usize,
    pending: VecDeque<Step>,
    init_done: bool,
    label: String,
}

impl RankProgram {
    /// Build rank `rank`'s program for a job.
    pub fn new(job: &JobSpec, rank: u32) -> Self {
        assert!(rank < job.nprocs);
        RankProgram {
            rank,
            nprocs: job.nprocs,
            nodes: job.nodes,
            ops: job.ops.clone(),
            config: job.config.clone(),
            id_base: job.id_base,
            op_idx: 0,
            pending: VecDeque::new(),
            init_done: false,
            label: format!("rank{rank}"),
        }
    }

    fn barrier(&self) -> Step {
        Step::BarrierSpin {
            id: BarrierId(self.id_base),
            parties: self.nprocs,
            spin_limit: self.config.spin_limit,
        }
    }

    fn chan(&self, src: u32, dst: u32) -> ChanId {
        ChanId(self.id_base + 1 + (src * self.nprocs + dst) as u64)
    }

    fn ranks_per_node(&self) -> u32 {
        self.nprocs / self.nodes
    }

    fn node_of(&self, rank: u32) -> u32 {
        rank / self.ranks_per_node()
    }

    fn leader_of(&self, node: u32) -> u32 {
        node * self.ranks_per_node()
    }

    /// Phase-exit synchronisation. Single-node jobs keep the exact
    /// historic step stream (one spin barrier); multi-node jobs run the
    /// hierarchical form — intra-node spin barrier, then a leader-only
    /// dissemination barrier over the interconnect carrying `bytes` per
    /// round message, then a local release. The dissemination pattern
    /// (round `k`: send to `(me+2ᵏ) mod n`, wait from `(me−2ᵏ) mod n`)
    /// works for any node count, not just powers of two.
    fn push_sync_phase(&mut self, bytes: u64) {
        if self.nodes == 1 {
            let b = self.barrier();
            self.pending.push_back(b);
            return;
        }
        let node = self.node_of(self.rank);
        let rpn = self.ranks_per_node();
        self.pending.push_back(Step::BarrierSpin {
            id: BarrierId(self.id_base + 1 + (self.nprocs as u64).pow(2) + node as u64),
            parties: rpn,
            spin_limit: self.config.spin_limit,
        });
        let release =
            ChanId(self.id_base + 1 + (self.nprocs as u64).pow(2) + (self.nodes + node) as u64);
        if self.rank == self.leader_of(node) {
            let n = self.nodes;
            let me = self.leader_of(node);
            let mut k = 1;
            while k < n {
                let to = self.leader_of((node + k) % n);
                let from = self.leader_of((node + n - k) % n);
                // Sender CPU overhead (the LogGP o term) for injecting
                // the message; wire latency comes from the interconnect.
                self.pending.push_back(Step::Compute(self.msg_cost(1, 0)));
                self.pending.push_back(Step::NetSend {
                    chan: self.chan(me, to),
                    tokens: 1,
                    bytes,
                });
                self.pending.push_back(Step::WaitChanSpin {
                    chan: self.chan(from, me),
                    spin_limit: self.config.spin_limit,
                });
                k *= 2;
            }
            if rpn > 1 {
                self.pending.push_back(Step::Notify {
                    chan: release,
                    tokens: rpn - 1,
                });
            }
        } else {
            self.pending.push_back(Step::WaitChanSpin {
                chan: release,
                spin_limit: self.config.spin_limit,
            });
        }
    }

    /// A pt2p deposit on `chan`: a plain notify on single-node jobs
    /// (byte-identical historic path), a `NetSend` on multi-node jobs —
    /// which itself degrades to a notify when both endpoints share a
    /// node, so only genuinely remote messages cross the interconnect.
    fn push_send(&mut self, chan: ChanId, bytes: u64) {
        if self.nodes == 1 {
            self.pending.push_back(Step::Notify { chan, tokens: 1 });
        } else {
            self.pending.push_back(Step::NetSend {
                chan,
                tokens: 1,
                bytes,
            });
        }
    }

    fn msg_cost(&self, messages: u64, bytes_each: u64) -> SimDuration {
        let per_msg =
            self.config.alpha.as_nanos() as f64 + self.config.beta_ns_per_byte * bytes_each as f64;
        SimDuration::from_nanos((per_msg * messages as f64).round() as u64)
    }

    fn jittered(&self, ctx: &mut ProgCtx<'_>, mean: SimDuration) -> SimDuration {
        let sigma = self.config.compute_jitter;
        if sigma <= 0.0 {
            return mean;
        }
        let f = ctx.rng.normal_with(1.0, sigma).max(0.5);
        mean.mul_f64(f)
    }

    /// Expand the next op into pending steps.
    fn expand_next(&mut self, ctx: &mut ProgCtx<'_>) {
        if !self.init_done {
            self.init_done = true;
            // MPI_Init: library setup compute (staggered by rank to model
            // sequential connection establishment), then a few rounds of
            // connection handshakes — each with a blocking socket wait,
            // which is where the launch-phase scheduler churn of the
            // paper's Table I minimum columns comes from — and an init
            // barrier.
            let setup = SimDuration::from_micros(300 + 120 * self.rank as u64);
            self.pending
                .push_back(Step::Compute(self.jittered(ctx, setup)));
            for _ in 0..10 {
                let work = SimDuration::from_micros(ctx.rng.range_u64(80, 250));
                let wait = SimDuration::from_micros(ctx.rng.range_u64(300, 3000));
                self.pending.push_back(Step::Compute(work));
                self.pending.push_back(Step::Sleep(wait));
            }
            self.push_sync_phase(8);
            return;
        }
        let Some(op) = self.ops.get(self.op_idx).cloned() else {
            // MPI_Finalize: closing barrier, then exit.
            self.push_sync_phase(8);
            self.pending.push_back(Step::Exit);
            self.op_idx += 1;
            return;
        };
        self.op_idx += 1;
        let p = self.nprocs as u64;
        match op {
            MpiOp::Compute { mean } => {
                self.pending
                    .push_back(Step::Compute(self.jittered(ctx, mean)));
            }
            MpiOp::Barrier => {
                // Dissemination rounds cost alpha*log2(p) before sync.
                let rounds = (p.max(2) as f64).log2().ceil() as u64;
                self.pending
                    .push_back(Step::Compute(self.msg_cost(rounds, 0)));
                self.push_sync_phase(8);
            }
            MpiOp::Allreduce { bytes } => {
                let rounds = (p.max(2) as f64).log2().ceil() as u64;
                self.pending
                    .push_back(Step::Compute(self.msg_cost(rounds, bytes)));
                self.push_sync_phase(bytes);
            }
            MpiOp::Alltoall { bytes } => {
                self.pending
                    .push_back(Step::Compute(self.msg_cost(p - 1, bytes)));
                self.push_sync_phase(bytes);
            }
            MpiOp::Bcast { bytes } | MpiOp::Reduce { bytes } => {
                // Binomial tree: ceil(log2 p) rounds of (alpha + beta*b);
                // modelled as synchronising (the NAS codes use them at
                // phase boundaries).
                let rounds = (p.max(2) as f64).log2().ceil() as u64;
                self.pending
                    .push_back(Step::Compute(self.msg_cost(rounds, bytes)));
                self.push_sync_phase(bytes);
            }
            MpiOp::Wavefront { bytes } => {
                if self.nprocs == 1 {
                    return;
                }
                if self.rank > 0 {
                    self.pending.push_back(Step::WaitChanSpin {
                        chan: self.chan(self.rank - 1, self.rank),
                        spin_limit: self.config.spin_limit,
                    });
                }
                self.pending
                    .push_back(Step::Compute(self.msg_cost(1, bytes)));
                if self.rank + 1 < self.nprocs {
                    self.push_send(self.chan(self.rank, self.rank + 1), bytes);
                }
            }
            MpiOp::Checkpoint { cost } => {
                // Quiesce for a consistent cut, write the checkpoint,
                // then commit it at the per-node checkpoint barrier —
                // the generation bump is what makes the checkpoint
                // observable to the batch driver.
                self.push_sync_phase(8);
                self.pending
                    .push_back(Step::Compute(self.jittered(ctx, cost)));
                let node = self.node_of(self.rank);
                self.pending.push_back(Step::BarrierSpin {
                    id: BarrierId(
                        self.id_base
                            + 1
                            + (self.nprocs as u64).pow(2)
                            + (2 * self.nodes + node) as u64,
                    ),
                    parties: self.ranks_per_node(),
                    spin_limit: self.config.spin_limit,
                });
            }
            MpiOp::NeighborExchange { bytes } => {
                if self.nprocs == 1 {
                    return;
                }
                let left = (self.rank + self.nprocs - 1) % self.nprocs;
                let right = (self.rank + 1) % self.nprocs;
                // Send both ways (message cost), then receive both ways.
                self.pending
                    .push_back(Step::Compute(self.msg_cost(2, bytes)));
                self.push_send(self.chan(self.rank, left), bytes);
                self.push_send(self.chan(self.rank, right), bytes);
                self.pending.push_back(Step::WaitChanSpin {
                    chan: self.chan(left, self.rank),
                    spin_limit: self.config.spin_limit,
                });
                if left != right {
                    self.pending.push_back(Step::WaitChanSpin {
                        chan: self.chan(right, self.rank),
                        spin_limit: self.config.spin_limit,
                    });
                }
            }
        }
    }
}

impl Program for RankProgram {
    fn next_step(&mut self, ctx: &mut ProgCtx<'_>) -> Step {
        loop {
            if let Some(step) = self.pending.pop_front() {
                return step;
            }
            self.expand_next(ctx);
        }
    }

    fn describe(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_kernel::Pid;
    use hpl_sim::{Rng, SimTime};

    fn next(p: &mut RankProgram, rng: &mut Rng) -> Step {
        let mut ctx = ProgCtx {
            pid: Pid(0),
            now: SimTime::ZERO,
            rng,
        };
        p.next_step(&mut ctx)
    }

    /// Drive through MPI_Init (setup compute, connection rounds, init
    /// barrier); returns the number of steps consumed.
    fn skip_init(p: &mut RankProgram, rng: &mut Rng) -> usize {
        for i in 1..100 {
            if matches!(next(p, rng), Step::BarrierSpin { .. }) {
                return i;
            }
        }
        panic!("no init barrier within 100 steps");
    }

    #[test]
    fn job_channel_ids_are_disjoint() {
        let job = JobSpec::new(8, vec![]);
        let mut seen = std::collections::HashSet::new();
        for s in 0..8 {
            for d in 0..8 {
                assert!(seen.insert(job.chan_id(s, d)));
            }
        }
        assert!(!seen.contains(&ChanId(job.barrier_id().0)));
    }

    #[test]
    fn init_has_setup_rounds_and_barrier() {
        let job = JobSpec::new(
            4,
            vec![MpiOp::Compute {
                mean: SimDuration::from_millis(1),
            }],
        );
        let mut p = RankProgram::new(&job, 0);
        let mut rng = Rng::new(1);
        assert!(
            matches!(next(&mut p, &mut rng), Step::Compute(_)),
            "setup first"
        );
        let mut sleeps = 0;
        loop {
            match next(&mut p, &mut rng) {
                Step::Sleep(_) => sleeps += 1,
                Step::BarrierSpin { parties, .. } => {
                    assert_eq!(parties, 4);
                    break;
                }
                Step::Compute(_) => {}
                other => panic!("unexpected init step {other:?}"),
            }
        }
        assert!(sleeps >= 3, "init includes blocking connection rounds");
    }

    #[test]
    fn checkpoint_ids_are_reserved_only_when_checkpointing() {
        let plain = JobSpec::new(4, vec![MpiOp::Barrier]).with_nodes(2);
        let ckpt = JobSpec::new(
            4,
            vec![MpiOp::Checkpoint {
                cost: SimDuration::from_micros(200),
            }],
        )
        .with_nodes(2);
        // Same base: the checkpointing job reserves exactly `nodes`
        // extra ids past the historic layout, so non-checkpointing jobs
        // keep their id ranges (and batch id striding) bit-for-bit.
        assert_eq!(*ckpt.id_range().end(), *plain.id_range().end() + 2);
        assert!(ckpt.has_checkpoints() && !plain.has_checkpoints());
        for node in 0..2 {
            let id = ckpt.ckpt_barrier_id(node).0;
            assert!(ckpt.id_range().contains(&id));
            assert!(id > *plain.id_range().end());
        }
    }

    #[test]
    fn checkpoint_expands_to_sync_write_and_commit_barrier() {
        let job = JobSpec::new(
            4,
            vec![MpiOp::Checkpoint {
                cost: SimDuration::from_micros(200),
            }],
        )
        .with_nodes(2);
        let mut p = RankProgram::new(&job, 0);
        let mut rng = Rng::new(9);
        skip_init(&mut p, &mut rng);
        // Multi-node sync phase for rank 0 (a node leader): local
        // barrier, then dissemination rounds, then release, then the
        // checkpoint write and the per-node commit barrier.
        let mut steps = Vec::new();
        for _ in 0..32 {
            let s = next(&mut p, &mut rng);
            let done = matches!(
                s,
                Step::BarrierSpin { id, parties, .. }
                    if id == job.ckpt_barrier_id(0) && parties == job.ranks_per_node()
            );
            steps.push(s);
            if done {
                return;
            }
        }
        panic!("no checkpoint commit barrier in {steps:?}");
    }

    #[test]
    fn finalize_barrier_then_exit() {
        let job = JobSpec::new(2, vec![]);
        let mut p = RankProgram::new(&job, 1);
        let mut rng = Rng::new(2);
        skip_init(&mut p, &mut rng);
        assert!(matches!(next(&mut p, &mut rng), Step::BarrierSpin { .. }));
        assert!(matches!(next(&mut p, &mut rng), Step::Exit));
    }

    #[test]
    fn allreduce_charges_log_rounds() {
        let job = JobSpec::new(8, vec![MpiOp::Allreduce { bytes: 1000 }]);
        let mut p = RankProgram::new(&job, 0);
        let mut rng = Rng::new(3);
        skip_init(&mut p, &mut rng);
        match next(&mut p, &mut rng) {
            // 3 rounds x (20us + 1000ns) = 63us.
            Step::Compute(d) => assert_eq!(d.as_micros(), 63),
            other => panic!("expected compute, got {other:?}"),
        }
        assert!(matches!(next(&mut p, &mut rng), Step::BarrierSpin { .. }));
    }

    #[test]
    fn alltoall_charges_p_minus_1() {
        let job = JobSpec::new(8, vec![MpiOp::Alltoall { bytes: 0 }]);
        let mut p = RankProgram::new(&job, 0);
        let mut rng = Rng::new(4);
        skip_init(&mut p, &mut rng);
        match next(&mut p, &mut rng) {
            Step::Compute(d) => assert_eq!(d.as_micros(), 140), // 7 x 20us
            other => panic!("expected compute, got {other:?}"),
        }
    }

    #[test]
    fn neighbor_exchange_sends_and_receives() {
        let job = JobSpec::new(4, vec![MpiOp::NeighborExchange { bytes: 100 }]);
        let mut p = RankProgram::new(&job, 1);
        let mut rng = Rng::new(5);
        skip_init(&mut p, &mut rng);
        assert!(
            matches!(next(&mut p, &mut rng), Step::Compute(_)),
            "message cost"
        );
        assert!(
            matches!(next(&mut p, &mut rng), Step::Notify { chan, .. } if chan == job.chan_id(1, 0))
        );
        assert!(
            matches!(next(&mut p, &mut rng), Step::Notify { chan, .. } if chan == job.chan_id(1, 2))
        );
        assert!(
            matches!(next(&mut p, &mut rng), Step::WaitChanSpin { chan, .. } if chan == job.chan_id(0, 1))
        );
        assert!(
            matches!(next(&mut p, &mut rng), Step::WaitChanSpin { chan, .. } if chan == job.chan_id(2, 1))
        );
    }

    #[test]
    fn two_rank_exchange_waits_once() {
        let job = JobSpec::new(2, vec![MpiOp::NeighborExchange { bytes: 0 }]);
        let mut p = RankProgram::new(&job, 0);
        let mut rng = Rng::new(6);
        skip_init(&mut p, &mut rng);
        let mut waits = 0;
        for _ in 0..5 {
            if matches!(next(&mut p, &mut rng), Step::WaitChanSpin { .. }) {
                waits += 1;
            }
        }
        assert_eq!(waits, 1, "left == right collapses to a single wait");
    }

    #[test]
    fn jitter_is_bounded_and_seeded() {
        let job = JobSpec::new(
            2,
            vec![MpiOp::Compute {
                mean: SimDuration::from_millis(10),
            }],
        );
        let mut p1 = RankProgram::new(&job, 0);
        let mut p2 = RankProgram::new(&job, 0);
        let mut r1 = Rng::new(7);
        let mut r2 = Rng::new(7);
        skip_init(&mut p1, &mut r1);
        skip_init(&mut p2, &mut r2);
        match (next(&mut p1, &mut r1), next(&mut p2, &mut r2)) {
            (Step::Compute(a), Step::Compute(b)) => {
                assert_eq!(a, b, "deterministic jitter");
                let f = a.as_secs_f64() / 0.010;
                assert!((0.9..1.1).contains(&f), "jitter factor {f}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bcast_and_reduce_synchronise() {
        let job = JobSpec::new(
            8,
            vec![MpiOp::Bcast { bytes: 4096 }, MpiOp::Reduce { bytes: 8 }],
        );
        let mut p = RankProgram::new(&job, 2);
        let mut rng = Rng::new(21);
        skip_init(&mut p, &mut rng);
        assert!(matches!(next(&mut p, &mut rng), Step::Compute(_)));
        assert!(matches!(next(&mut p, &mut rng), Step::BarrierSpin { .. }));
        assert!(matches!(next(&mut p, &mut rng), Step::Compute(_)));
        assert!(matches!(next(&mut p, &mut rng), Step::BarrierSpin { .. }));
    }

    #[test]
    fn wavefront_is_a_pipeline() {
        let job = JobSpec::new(4, vec![MpiOp::Wavefront { bytes: 128 }]);
        let mut rng = Rng::new(22);
        // Rank 0: no upstream wait, but notifies downstream.
        let mut p0 = RankProgram::new(&job, 0);
        skip_init(&mut p0, &mut rng);
        assert!(matches!(next(&mut p0, &mut rng), Step::Compute(_)));
        assert!(
            matches!(next(&mut p0, &mut rng), Step::Notify { chan, .. } if chan == job.chan_id(0, 1))
        );
        // Middle rank: waits upstream, notifies downstream.
        let mut p2 = RankProgram::new(&job, 2);
        skip_init(&mut p2, &mut rng);
        assert!(
            matches!(next(&mut p2, &mut rng), Step::WaitChanSpin { chan, .. } if chan == job.chan_id(1, 2))
        );
        assert!(matches!(next(&mut p2, &mut rng), Step::Compute(_)));
        assert!(
            matches!(next(&mut p2, &mut rng), Step::Notify { chan, .. } if chan == job.chan_id(2, 3))
        );
        // Last rank: waits, computes, no notify (next is finalize barrier).
        let mut p3 = RankProgram::new(&job, 3);
        skip_init(&mut p3, &mut rng);
        assert!(matches!(next(&mut p3, &mut rng), Step::WaitChanSpin { .. }));
        assert!(matches!(next(&mut p3, &mut rng), Step::Compute(_)));
        assert!(matches!(next(&mut p3, &mut rng), Step::BarrierSpin { .. }));
    }

    #[test]
    fn id_base_separates_jobs() {
        let a = JobSpec::new(8, vec![]);
        let b = JobSpec::new(8, vec![]).with_id_base(1000);
        assert_ne!(a.barrier_id(), b.barrier_id());
        for s in 0..8 {
            for d in 0..8 {
                assert_ne!(a.chan_id(s, d), b.chan_id(s, d));
            }
        }
    }

    #[test]
    fn repeat_unrolls() {
        let body = [
            MpiOp::Compute {
                mean: SimDuration::from_millis(1),
            },
            MpiOp::Barrier,
        ];
        let ops = JobSpec::repeat(3, &body);
        assert_eq!(ops.len(), 6);
        let job = JobSpec::new(2, ops);
        assert_eq!(job.total_compute(), SimDuration::from_millis(3));
    }
}
