//! The launcher stack: `perf` → (`chrt` →) `mpiexec` → ranks.
//!
//! The paper measures counters **system-wide over a window that includes
//! the launcher processes themselves**, which is why Table Ib's migration
//! floor is ~10 and not 8: "one migration for each MPI task as it is
//! created (for a total of eight); one migration occurs when mpiexec is
//! created; one is caused by chrt when mpiexec returns control, and at
//! least one is created by the perf Linux tool". This module reproduces
//! that process tree faithfully so the same arithmetic falls out of the
//! simulation.

use crate::runtime::{JobSpec, RankProgram};
use hpl_core::chrt::chrt_spec;
use hpl_kernel::program::ScriptProgram;
use hpl_kernel::{Node, Pid, Policy, Program, RunOutcome, Step, TaskSpec, TaskState};
use hpl_sim::{SimDuration, SimTime};

/// Task tag marking members of the measured application (ranks +
/// mpiexec).
pub const APP_TAG: u32 = 0xA99;

/// Which scheduler the application runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Standard Linux: ranks are plain CFS tasks (§III baseline).
    Cfs,
    /// CFS with a nice boost for the ranks — the first of §IV's
    /// "existing knobs" (spoiler: sleeper fairness defeats it).
    CfsNice {
        /// Nice value for the ranks (negative = higher priority).
        nice: i8,
    },
    /// The §IV comparison: ranks under the RT scheduler (SCHED_FIFO).
    Rt {
        /// RT priority for the ranks.
        prio: u8,
    },
    /// The paper's HPL: `chrt --hpc mpiexec ...` — mpiexec and ranks in
    /// the HPC class. Requires a node built with the HPC class.
    Hpc,
    /// Static binding baseline (§IV discussion): CFS ranks pinned one
    /// per hardware thread via `sched_setaffinity`.
    CfsPinned,
}

/// Handle to a launched application.
#[derive(Debug, Clone, Copy)]
pub struct LaunchHandle {
    /// The outermost wrapper (`perf`); exits last.
    pub perf_pid: Pid,
    /// `mpiexec`; its lifetime brackets the parallel phase.
    pub mpiexec_pid: Pid,
    /// Launch time.
    pub launched_at: SimTime,
}

/// A hook wrapping each rank's program at fork time: called with the
/// global rank index and the bare [`RankProgram`], it returns the
/// program the rank actually runs. The identity closure reproduces the
/// unwrapped launch exactly; `hpl-coord` uses it to interpose its
/// cooperative lease shim without the launcher knowing coordination
/// exists.
pub type RankWrap<'a> = &'a mut dyn FnMut(u32, Box<dyn Program>) -> Box<dyn Program>;

/// Build the mpiexec program forking the ranks in `ranks` (a single
/// node's share of the job; the whole job on a single-node launch):
/// fork each, wait, exit. Each rank's program passes through `wrap`.
fn mpiexec_spec(
    node: &Node,
    job: &JobSpec,
    mode: SchedMode,
    ranks: std::ops::Range<u32>,
    wrap: RankWrap<'_>,
) -> TaskSpec {
    let mut steps = Vec::new();
    let ncpus = node.topo.total_cpus();
    let first = ranks.start;
    for rank in ranks {
        let rank_policy = match mode {
            SchedMode::Cfs | SchedMode::CfsPinned => Policy::Normal { nice: 0 },
            SchedMode::CfsNice { nice } => Policy::Normal { nice },
            SchedMode::Rt { prio } => Policy::Fifo(prio),
            SchedMode::Hpc => Policy::Hpc,
        };
        let mut spec = TaskSpec::new(
            format!("rank{rank}"),
            rank_policy,
            wrap(rank, Box::new(RankProgram::new(job, rank))),
        )
        .with_tag(APP_TAG);
        if mode == SchedMode::CfsPinned {
            // One rank per hardware thread, in id order — the static
            // binding a user would write by hand. Multi-node jobs pin by
            // node-local index so each node's ranks cover its own CPUs.
            spec = spec.with_affinity(hpl_topology::CpuMask::single(hpl_topology::CpuId(
                (rank - first) % ncpus,
            )));
        }
        steps.push(Step::Fork(spec));
        // mpiexec does a little work per rank launch (process setup,
        // connection bootstrap).
        steps.push(Step::Compute(SimDuration::from_micros(150)));
    }
    steps.push(Step::WaitChildren);
    // Teardown bookkeeping before exit.
    steps.push(Step::Compute(SimDuration::from_micros(300)));
    let policy = match mode {
        SchedMode::Rt { prio } => Policy::Fifo(prio),
        _ => Policy::Normal { nice: 0 },
    };
    TaskSpec::new("mpiexec", policy, ScriptProgram::boxed("mpiexec", steps)).with_tag(APP_TAG)
}

/// Launch the application under `mode`, returning once the process tree
/// exists (the simulation still has to run it). The caller is expected
/// to have opened a `PerfSession` beforehand, mirroring
/// `perf stat -a -- chrt ... mpiexec ...`.
pub fn launch(node: &mut Node, job: &JobSpec, mode: SchedMode) -> LaunchHandle {
    let launched_at = node.now();
    let inner = mpiexec_spec(node, job, mode, 0..job.nprocs, &mut |_, p| p);
    // Under HPL the paper wraps mpiexec in the modified chrt; under RT
    // the stock chrt does the same job. Either way perf is the root.
    let wrapped = match mode {
        SchedMode::Hpc => chrt_spec("chrt", inner),
        _ => inner,
    };
    let perf_program = ScriptProgram::boxed(
        "perf",
        vec![
            // perf setup before starting the workload.
            Step::Compute(SimDuration::from_micros(500)),
            Step::Fork(wrapped),
            Step::WaitChildren,
            // Counter collection and report generation: long enough that
            // daemons starved during an HPL run drain back inside the
            // measurement window, as they do for the real perf.
            Step::Compute(SimDuration::from_millis(20)),
        ],
    );
    let perf_pid = node.spawn(TaskSpec::new(
        "perf",
        Policy::Normal { nice: 0 },
        perf_program,
    ));
    // The fork chain runs inside the simulation; step until mpiexec
    // exists so we can hand back its pid. Under HPL, `chrt` *is*
    // mpiexec after the exec (same pid, same comm in our model).
    let deadline = node.now() + SimDuration::from_millis(100);
    let mpiexec_pid = loop {
        if let Some(t) = node
            .tasks
            .iter()
            .find(|t| t.pid > perf_pid && (t.name == "mpiexec" || t.name == "chrt"))
        {
            break t.pid;
        }
        assert!(node.now() < deadline, "mpiexec did not appear");
        assert!(node.step(), "queue drained before mpiexec appeared");
    };
    LaunchHandle {
        perf_pid,
        mpiexec_pid,
        launched_at,
    }
}

/// Spawn one node's share of a multi-node job: the same
/// `perf` → (`chrt` →) `mpiexec` → ranks tree as [`launch`], restricted
/// to the ranks the job places on cluster node `node_idx`, and — unlike
/// [`launch`] — **without stepping the node**. A cluster driver must
/// keep its nodes in virtual-time lockstep, so independently running one
/// node forward here would break the co-simulation; the driver resolves
/// the mpiexec pid from the task table after (or during) the lockstep
/// run instead. Returns the root (`perf`) pid.
pub fn spawn_job_tree(node: &mut Node, job: &JobSpec, mode: SchedMode, node_idx: u32) -> Pid {
    spawn_job_tree_with(node, job, mode, node_idx, &mut |_, p| p)
}

/// [`spawn_job_tree`] with a [`RankWrap`] hook interposed on every rank
/// program — the entry point coordination runtimes use to shim ranks.
/// The identity closure makes this byte-identical to the plain spawn.
pub fn spawn_job_tree_with(
    node: &mut Node,
    job: &JobSpec,
    mode: SchedMode,
    node_idx: u32,
    wrap: RankWrap<'_>,
) -> Pid {
    let inner = mpiexec_spec(node, job, mode, job.ranks_on(node_idx), wrap);
    let wrapped = match mode {
        SchedMode::Hpc => chrt_spec("chrt", inner),
        _ => inner,
    };
    let perf_program = ScriptProgram::boxed(
        "perf",
        vec![
            Step::Compute(SimDuration::from_micros(500)),
            Step::Fork(wrapped),
            Step::WaitChildren,
            Step::Compute(SimDuration::from_millis(20)),
        ],
    );
    node.spawn(TaskSpec::new(
        "perf",
        Policy::Normal { nice: 0 },
        perf_program,
    ))
}

/// After (part of) a lockstep run, find the mpiexec task under `perf_pid`
/// on a node, if the fork chain has created it yet. Under HPL, `chrt`
/// *is* mpiexec after the exec (same pid, same comm in our model).
///
/// Resolution is by parenthood, not pid order, so it stays unambiguous
/// when several jobs' launcher trees coexist on one node.
pub fn find_mpiexec(node: &Node, perf_pid: Pid) -> Option<Pid> {
    node.tasks
        .iter()
        .find(|t| t.parent == Some(perf_pid) && (t.name == "mpiexec" || t.name == "chrt"))
        .map(|t| t.pid)
}

impl LaunchHandle {
    /// Run the node until the whole tree (perf) has exited; returns the
    /// **application execution time**: mpiexec's lifetime, which is what
    /// the paper's per-benchmark timers report. On deadlock or budget
    /// exhaustion the failed [`RunOutcome`] comes back as the error and
    /// the node is left where the run stopped, so a harness can record
    /// the failed repetition instead of tearing the whole sweep down.
    pub fn try_run_to_completion(
        &self,
        node: &mut Node,
        max_events: u64,
    ) -> Result<SimDuration, RunOutcome> {
        let outcome = node.run_until_exit(self.perf_pid, max_events);
        if !outcome.is_complete() {
            return Err(outcome);
        }
        let mpiexec = node.tasks.get(self.mpiexec_pid);
        debug_assert_eq!(mpiexec.state, TaskState::Dead);
        Ok(mpiexec
            .exited_at
            .expect("mpiexec dead implies exit time")
            .since(self.launched_at))
    }

    /// Panicking convenience wrapper around
    /// [`Self::try_run_to_completion`] for tests and examples that treat
    /// an unfinished run as a bug.
    pub fn run_to_completion(&self, node: &mut Node, max_events: u64) -> SimDuration {
        self.try_run_to_completion(node, max_events)
            .unwrap_or_else(|outcome| {
                panic!(
                    "job under {} did not complete: {}",
                    self.perf_pid,
                    outcome.label()
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::MpiOp;
    use hpl_core::hpl_node_builder;
    use hpl_kernel::NodeBuilder;
    use hpl_topology::Topology;

    fn tiny_job(nprocs: u32) -> JobSpec {
        JobSpec::new(
            nprocs,
            JobSpec::repeat(
                3,
                &[
                    MpiOp::Compute {
                        mean: SimDuration::from_millis(2),
                    },
                    MpiOp::Allreduce { bytes: 64 },
                ],
            ),
        )
    }

    #[test]
    fn cfs_launch_runs_to_completion() {
        let mut node = NodeBuilder::new(Topology::power6_js22())
            .with_seed(1)
            .build();
        let job = tiny_job(8);
        let h = launch(&mut node, &job, SchedMode::Cfs);
        let t = h.run_to_completion(&mut node, 50_000_000);
        // 3 x 2ms of compute plus init/teardown: between 6ms and 60ms.
        assert!(t.as_secs_f64() > 0.006, "exec time {t}");
        assert!(t.as_secs_f64() < 0.060, "exec time {t}");
        // All ranks exited.
        let ranks = node
            .tasks
            .iter()
            .filter(|t| t.tag == Some(APP_TAG) && t.name.starts_with("rank"))
            .count();
        assert_eq!(ranks, 8);
        assert!(node
            .tasks
            .iter()
            .filter(|t| t.tag == Some(APP_TAG))
            .all(|t| t.state == TaskState::Dead));
    }

    #[test]
    fn hpc_launch_puts_ranks_in_hpc_class() {
        let mut node = hpl_node_builder(Topology::power6_js22())
            .with_seed(2)
            .build();
        let job = tiny_job(8);
        let h = launch(&mut node, &job, SchedMode::Hpc);
        h.run_to_completion(&mut node, 50_000_000);
        for t in node.tasks.iter().filter(|t| t.name.starts_with("rank")) {
            assert_eq!(t.policy, Policy::Hpc, "{} policy", t.name);
        }
        // mpiexec inherited the class through chrt.
        assert_eq!(node.tasks.get(h.mpiexec_pid).policy, Policy::Hpc);
    }

    #[test]
    fn rt_launch_uses_fifo() {
        let mut node = NodeBuilder::new(Topology::power6_js22())
            .with_seed(3)
            .build();
        let job = tiny_job(4);
        let h = launch(&mut node, &job, SchedMode::Rt { prio: 50 });
        h.run_to_completion(&mut node, 50_000_000);
        for t in node.tasks.iter().filter(|t| t.name.starts_with("rank")) {
            assert_eq!(t.policy, Policy::Fifo(50));
        }
    }

    #[test]
    fn nice_launch_sets_nice() {
        let mut node = NodeBuilder::new(Topology::power6_js22())
            .with_seed(6)
            .build();
        let job = tiny_job(4);
        let h = launch(&mut node, &job, SchedMode::CfsNice { nice: -19 });
        h.run_to_completion(&mut node, 50_000_000);
        for t in node.tasks.iter().filter(|t| t.name.starts_with("rank")) {
            assert_eq!(t.policy, Policy::Normal { nice: -19 });
        }
    }

    #[test]
    fn pinned_launch_sets_affinities() {
        let mut node = NodeBuilder::new(Topology::power6_js22())
            .with_seed(4)
            .build();
        let job = tiny_job(8);
        let h = launch(&mut node, &job, SchedMode::CfsPinned);
        h.run_to_completion(&mut node, 50_000_000);
        let mut cpus: Vec<u32> = node
            .tasks
            .iter()
            .filter(|t| t.name.starts_with("rank"))
            .map(|t| {
                assert_eq!(t.affinity.count(), 1);
                t.affinity.first().unwrap().0
            })
            .collect();
        cpus.sort_unstable();
        assert_eq!(cpus, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn hpl_placement_one_rank_per_core_first() {
        let mut node = hpl_node_builder(Topology::power6_js22())
            .with_seed(5)
            .build();
        let job = tiny_job(4);
        let h = launch(&mut node, &job, SchedMode::Hpc);
        h.run_to_completion(&mut node, 50_000_000);
        // With 4 ranks on 4 cores: each rank ran on a distinct core.
        let mut cores: Vec<u32> = node
            .tasks
            .iter()
            .filter(|t| t.name.starts_with("rank"))
            .map(|t| node.topo.core_of(t.cpu))
            .collect();
        cores.sort_unstable();
        assert_eq!(cores, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deterministic_exec_time() {
        let run = |seed: u64| {
            let mut node = hpl_node_builder(Topology::power6_js22())
                .with_seed(seed)
                .build();
            let job = tiny_job(8);
            let h = launch(&mut node, &job, SchedMode::Hpc);
            h.run_to_completion(&mut node, 50_000_000)
        };
        assert_eq!(run(9), run(9));
    }
}
