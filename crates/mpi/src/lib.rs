//! # hpl-mpi — a simulated MPI runtime
//!
//! Models the layer between the NAS workloads and the simulated kernel:
//! ranks as kernel tasks, collectives and point-to-point exchanges built
//! on the kernel's channel/barrier substrate, and the launcher stack the
//! paper actually measures (`perf` wrapping `chrt` wrapping `mpiexec`
//! wrapping the ranks — the accounting behind Table Ib's "exactly ~10
//! migrations").
//!
//! Two modelling choices matter for fidelity:
//!
//! * **Spin-then-block waits.** MPI progress engines busy-poll before
//!   yielding. Ranks therefore *occupy their CPUs* while waiting briefly,
//!   which keeps baseline context-switch counts low and —
//!   crucially — keeps CPUs non-idle so the load balancer has no idle
//!   target, unless noise makes a rank late enough for spins to expire.
//!   That is exactly the regime in which the paper's migration storms
//!   ignite.
//! * **LogP-flavoured collective costs.** Each collective charges
//!   `O(log p)` (tree) or `O(p)` (all-to-all) per-message latencies as
//!   compute before synchronising, so communication-bound codes (cg, is)
//!   stay communication-bound in the simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod launcher;
pub mod runtime;

pub use launcher::{
    find_mpiexec, launch, spawn_job_tree, spawn_job_tree_with, LaunchHandle, RankWrap, SchedMode,
};
pub use runtime::{JobSpec, MpiConfig, MpiOp, RankProgram};
