//! Property tests for the MPI runtime: any random job completes under
//! every scheduler mode, and communication bookkeeping balances.

use hpl_core::hpl_node_builder;
use hpl_kernel::{NodeBuilder, TaskState};
use hpl_mpi::{launch, JobSpec, MpiOp, SchedMode};
use hpl_sim::SimDuration;
use hpl_topology::Topology;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum OpGen {
    Compute(u64),
    Barrier,
    Allreduce(u64),
    Alltoall(u64),
    Exchange(u64),
}

fn op_strategy() -> impl Strategy<Value = OpGen> {
    prop_oneof![
        (50u64..3000).prop_map(OpGen::Compute),
        Just(OpGen::Barrier),
        (0u64..4096).prop_map(OpGen::Allreduce),
        (0u64..4096).prop_map(OpGen::Alltoall),
        (0u64..4096).prop_map(OpGen::Exchange),
    ]
}

fn to_job(ops: &[OpGen], nprocs: u32) -> JobSpec {
    let ops = ops
        .iter()
        .map(|o| match *o {
            OpGen::Compute(us) => MpiOp::Compute {
                mean: SimDuration::from_micros(us),
            },
            OpGen::Barrier => MpiOp::Barrier,
            OpGen::Allreduce(b) => MpiOp::Allreduce { bytes: b },
            OpGen::Alltoall(b) => MpiOp::Alltoall { bytes: b },
            OpGen::Exchange(b) => MpiOp::NeighborExchange { bytes: b },
        })
        .collect();
    JobSpec::new(nprocs, ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any random op sequence completes (no deadlock) under CFS, RT,
    /// pinned and HPL modes, with every rank exiting and all tokens
    /// balanced (no channel left with waiters).
    #[test]
    fn any_job_completes_under_every_mode(
        ops in proptest::collection::vec(op_strategy(), 1..12),
        nprocs in 1u32..9
    ) {
        let job = to_job(&ops, nprocs);
        for mode in [
            SchedMode::Cfs,
            SchedMode::Rt { prio: 50 },
            SchedMode::CfsPinned,
            SchedMode::Hpc,
        ] {
            let mut node = if mode == SchedMode::Hpc {
                hpl_node_builder(Topology::power6_js22()).with_seed(5).build()
            } else {
                NodeBuilder::new(Topology::power6_js22()).with_seed(5).build()
            };
            let handle = launch(&mut node, &job, mode);
            let exec = handle.run_to_completion(&mut node, 2_000_000_000);
            prop_assert!(exec > SimDuration::ZERO);
            let ranks: Vec<_> = node
                .tasks
                .iter()
                .filter(|t| t.name.starts_with("rank"))
                .collect();
            prop_assert_eq!(ranks.len(), nprocs as usize);
            for r in &ranks {
                prop_assert_eq!(r.state, TaskState::Dead, "{} stuck under {:?}", r.name.clone(), mode);
            }
            // No channel still has waiters (all sends matched receives).
            for s in 0..nprocs {
                for d in 0..nprocs {
                    prop_assert_eq!(node.sync.chan_waiters(job.chan_id(s, d)), 0);
                }
            }
        }
    }

    /// Execution time grows monotonically-ish with compute: doubling
    /// every compute op cannot make the clean-machine job faster.
    #[test]
    fn more_compute_never_faster(
        ops in proptest::collection::vec(op_strategy(), 1..8),
    ) {
        let job1 = to_job(&ops, 4);
        let doubled: Vec<OpGen> = ops
            .iter()
            .map(|o| match *o {
                OpGen::Compute(us) => OpGen::Compute(us * 2),
                ref other => other.clone(),
            })
            .collect();
        let job2 = to_job(&doubled, 4);
        let run = |job: &JobSpec| {
            let mut node = NodeBuilder::new(Topology::power6_js22()).with_seed(9).build();
            let handle = launch(&mut node, job, SchedMode::Cfs);
            handle.run_to_completion(&mut node, 2_000_000_000)
        };
        let t1 = run(&job1);
        let t2 = run(&job2);
        // Allow sub-millisecond scheduling slack.
        prop_assert!(
            t2 + SimDuration::from_millis(1) >= t1,
            "doubling compute made it faster: {t1} -> {t2}"
        );
    }

    /// The exec time of a pure-compute job on a quiet machine is within
    /// the analytic envelope: at least `work` (full speed), at most
    /// `work / (smt_factor * cold_factor)` plus launch overhead.
    #[test]
    fn clean_machine_time_within_model_envelope(work_ms in 5u64..40) {
        let job = to_job(&[OpGen::Compute(work_ms * 1000)], 8);
        let mut node = NodeBuilder::new(Topology::power6_js22()).with_seed(3).build();
        let handle = launch(&mut node, &job, SchedMode::Cfs);
        let exec = handle.run_to_completion(&mut node, 2_000_000_000).as_secs_f64();
        let work = work_ms as f64 / 1000.0;
        let cfg = hpl_kernel::KernelConfig::default();
        let floor = work; // full speed
        let ceil = work / (cfg.smt_busy_factor * cfg.cache_cold_factor) + 0.12; // worst case + launch
        prop_assert!(exec >= floor, "{exec} < {floor}");
        prop_assert!(exec <= ceil, "{exec} > {ceil}");
    }
}
