//! Property tests for the weighted DFRS share split: conservation,
//! weight monotonicity and the uniform-weights ⇒ even-split identity
//! must hold for *any* cluster view, weight table, seed and epoch.

use hpl_batch::{ClusterView, Dfrs, RunningJob};
use hpl_sim::SimTime;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A random small cluster view: up to 5 nodes, up to 6 running jobs
/// each placed on a random non-empty node subset, plus a weight table
/// covering a random subset of the jobs.
#[derive(Debug, Clone)]
struct ViewGen {
    nodes: usize,
    jobs: Vec<(u32, Vec<usize>, Option<u32>)>,
}

fn view_strategy() -> impl Strategy<Value = ViewGen> {
    (
        1usize..5,
        proptest::collection::vec((0u32..50, 1u64..31, proptest::option::of(1u32..9)), 1..6),
    )
        .prop_map(|(nodes, raw)| {
            let mut seen = BTreeMap::new();
            for (id, mask, weight) in raw {
                // Place on the node subset selected by the mask bits.
                let placement: Vec<usize> = (0..nodes).filter(|n| mask & (1 << n) != 0).collect();
                if placement.is_empty() {
                    continue;
                }
                seen.entry(id).or_insert((placement, weight));
            }
            ViewGen {
                nodes,
                jobs: seen.into_iter().map(|(id, (p, w))| (id, p, w)).collect(),
            }
        })
}

fn build(g: &ViewGen) -> (ClusterView, BTreeMap<u32, u32>) {
    let mut occupancy = vec![0u32; g.nodes];
    let mut running = Vec::new();
    let mut weights = BTreeMap::new();
    for (id, placement, weight) in &g.jobs {
        for &n in placement {
            occupancy[n] += 1;
        }
        running.push(RunningJob {
            id: *id,
            placement: placement.clone(),
            est_end: SimTime::from_nanos(1),
        });
        if let Some(w) = weight {
            weights.insert(*id, *w);
        }
    }
    let view = ClusterView {
        now: SimTime::from_nanos(0),
        occupancy,
        running,
        down: vec![false; g.nodes],
    };
    (view, weights)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every occupied node's shares sum to exactly 1000 milli, idle
    /// nodes promise nothing, and every resident job gets a non-zero
    /// share — for any weights, seed and epoch.
    #[test]
    fn weighted_shares_conserve_node_capacity(
        g in view_strategy(),
        seed in 0u64..1_000,
        epoch in 0u64..1_000,
    ) {
        let (view, weights) = build(&g);
        let shares = Dfrs::shares_for_weighted(seed, epoch, &view, &weights);
        let mut per_node: BTreeMap<usize, u32> = BTreeMap::new();
        for &(n, job, s) in &shares {
            prop_assert!(s > 0, "job {} on node {} got a zero share", job, n);
            *per_node.entry(n).or_insert(0) += s;
        }
        for n in 0..view.occupancy.len() {
            if view.occupancy[n] > 0 {
                prop_assert_eq!(per_node.get(&n), Some(&1000), "node {}", n);
            } else {
                prop_assert_eq!(per_node.get(&n), None, "idle node {}", n);
            }
        }
    }

    /// On any single node, a higher-weight job never receives a
    /// smaller share than a lower-weight one (beyond the one remainder
    /// milli the rotation may hand the lighter job).
    #[test]
    fn weighted_shares_monotone_in_weight(
        g in view_strategy(),
        seed in 0u64..1_000,
        epoch in 0u64..1_000,
    ) {
        let (view, weights) = build(&g);
        let shares = Dfrs::shares_for_weighted(seed, epoch, &view, &weights);
        let w = |job: u32| weights.get(&job).copied().unwrap_or(1);
        for &(n1, j1, s1) in &shares {
            for &(n2, j2, s2) in &shares {
                if n1 == n2 && w(j1) >= w(j2) {
                    prop_assert!(
                        s1 + 1 >= s2,
                        "node {}: weight {} got {} but weight {} got {}",
                        n1, w(j1), s1, w(j2), s2
                    );
                }
            }
        }
    }

    /// A uniform weight table — whatever the common value — is
    /// bit-identical to the unweighted even split, remainder rotation
    /// included.
    #[test]
    fn uniform_weights_reproduce_the_even_split(
        g in view_strategy(),
        common in 1u32..9,
        seed in 0u64..1_000,
        epoch in 0u64..1_000,
    ) {
        let (view, _) = build(&g);
        let uniform: BTreeMap<u32, u32> =
            g.jobs.iter().map(|&(id, _, _)| (id, common)).collect();
        prop_assert_eq!(
            Dfrs::shares_for_weighted(seed, epoch, &view, &uniform),
            Dfrs::shares_for(seed, epoch, &view)
        );
    }
}
