//! SWF ingestion against the vendored fixture: exact round-trip,
//! normalization, mapping coverage, transform algebra, and an
//! end-to-end engine drive including the serial-vs-pooled bit-equality
//! check on an SWF-derived workload.

use hpl_batch::{
    AllocPolicy, BatchRun, ConservativeBackfill, EasyBackfill, Fcfs, SwfMap, SwfTrace,
    TraceTransform,
};
use hpl_cluster::{Cluster, CosimConfig, Interconnect, NetConfig};
use hpl_core::HplClass;
use hpl_kernel::{KernelConfig, NodeBuilder};
use hpl_sim::{Rng, SimDuration};
use hpl_topology::Topology;

const FIXTURE: &str = include_str!("data/sp2_sample.swf");

fn build_cluster_with(nodes: usize, seed: u64, cosim: CosimConfig) -> Cluster {
    let mut cluster = Cluster::builder()
        .nodes_with(nodes, move |i| {
            NodeBuilder::new(Topology::smp(2))
                .with_config(KernelConfig::hpl())
                .with_seed(Rng::for_run(seed, i as u64).next_u64())
                .with_hpc_class(Box::new(HplClass::new()))
                .build()
        })
        .fabric(Interconnect::flat(nodes, NetConfig::default()))
        .cosim(cosim)
        .build();
    for i in 0..nodes {
        cluster.node_mut(i).run_for(SimDuration::from_millis(100));
    }
    cluster
}

#[test]
fn fixture_parses_with_headers_and_round_trips() {
    let t = SwfTrace::from_text(FIXTURE).expect("fixture parses");
    assert_eq!(t.jobs.len(), 200, "vendored fixture is 200 jobs");
    assert_eq!(t.max_nodes(), Some(64));
    assert_eq!(t.max_procs(), Some(128));
    assert_eq!(t.directive("UnixStartTime"), Some(820_454_400));
    // Round trip is exact: text → value → text → value.
    let text = t.to_text();
    let back = SwfTrace::from_text(&text).expect("reparses");
    assert_eq!(t, back);
    assert_eq!(back.to_text(), text);
    // The fixture exercises the -1 missing-value semantics.
    assert!(t.jobs.iter().any(|j| j.procs == -1 && j.req_procs > 0));
    assert!(t.jobs.iter().any(|j| j.req_time == -1));
    assert!(t.jobs.iter().any(|j| j.cpu_time == -1));
}

#[test]
fn fixture_is_nonmonotone_until_normalized() {
    let t = SwfTrace::from_text(FIXTURE).unwrap();
    assert!(
        t.jobs.windows(2).any(|w| w[0].submit > w[1].submit),
        "fixture must preserve archive logging order (non-monotone submits)"
    );
    let n = t.normalized();
    assert!(n.jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
    assert_eq!(n.jobs.first().unwrap().submit, 0, "rebased to epoch");
    assert_eq!(n.jobs.len(), t.jobs.len());
}

#[test]
fn fixture_maps_with_high_coverage() {
    let t = SwfTrace::from_text(FIXTURE).unwrap();
    let (batch, dropped) = t.to_batch(&SwfMap::for_cluster(16));
    assert!(
        dropped <= t.jobs.len() / 10,
        "mapping must keep >= 90% of records, dropped {dropped}"
    );
    assert_eq!(batch.jobs.len() + dropped, t.jobs.len());
    for j in &batch.jobs {
        assert!(j.nodes >= 1 && j.nodes <= 16);
        assert!(j.compute_ns > 0);
        assert!(j.est_runtime_ns > 0);
    }
    // The trace text form round-trips the mapped jobs too (v2 carries
    // user and class).
    let text = batch.to_text();
    let back = hpl_batch::BatchTrace::from_text(&text).expect("v2 parses");
    assert_eq!(back, batch);
    assert!(batch.jobs.iter().any(|j| j.user != 0));
    assert!(batch.jobs.iter().any(|j| j.class != 0));
}

#[test]
fn transforms_compose_deterministically_on_the_fixture() {
    let t = SwfTrace::from_text(FIXTURE).unwrap();
    let (batch, _) = t.to_batch(&SwfMap::for_cluster(16));
    let small = TraceTransform::new()
        .take(40)
        .arrival_scale(0.25)
        .fit(8)
        .apply(&batch);
    assert_eq!(small.jobs.len(), 40);
    assert!(small.jobs.iter().all(|j| j.nodes <= 8));
    // Arrival compression quarters every submit offset.
    for (a, b) in small.jobs.iter().zip(&batch.jobs) {
        assert_eq!(a.submit_ns, (b.submit_ns as f64 * 0.25).round() as u64);
    }
    // Pure function: identical on repeat.
    let again = TraceTransform::new()
        .take(40)
        .arrival_scale(0.25)
        .fit(8)
        .apply(&batch);
    assert_eq!(small, again);
}

/// A 30-job SWF slice drives the engine end to end under FCFS and EASY,
/// deterministically.
#[test]
fn swf_slice_drives_the_engine() {
    let t = SwfTrace::from_text(FIXTURE).unwrap();
    let (batch, _) = t.to_batch(&SwfMap::for_cluster(8).ns_per_sec(2_000.0));
    let trace = TraceTransform::new()
        .take(30)
        .arrival_scale(0.1)
        .apply(&batch);
    type PolicyMaker = fn() -> Box<dyn AllocPolicy>;
    let mks: [(&str, PolicyMaker); 2] = [
        ("fcfs", || Box::new(Fcfs)),
        ("easy", || Box::new(EasyBackfill::new())),
    ];
    for (name, mk) in mks {
        let mut c1 = build_cluster_with(8, 4242, CosimConfig::serial());
        let r1 = BatchRun::new(&trace)
            .run(&mut c1, mk().as_mut())
            .expect("swf run completes");
        assert_eq!(r1.outcomes.len(), 30, "{name}");
        assert_eq!(r1.occupancy_violations, 0, "{name}");
        assert_eq!(r1.jobs_lost, 0, "{name}");
        assert!(!r1.user_stats.is_empty(), "{name}: users reported");
        let mut c2 = build_cluster_with(8, 4242, CosimConfig::serial());
        let r2 = BatchRun::new(&trace)
            .run(&mut c2, mk().as_mut())
            .expect("swf run completes");
        assert_eq!(r1, r2, "{name}: SWF replay must be deterministic");
    }
}

/// The acceptance-criteria equality: an SWF-driven scenario produces a
/// bit-identical report on the serial and pooled event loops.
#[test]
fn swf_run_serial_vs_pooled_bit_equality() {
    let t = SwfTrace::from_text(FIXTURE).unwrap();
    let (batch, _) = t.to_batch(&SwfMap::for_cluster(4).ns_per_sec(2_000.0));
    let trace = TraceTransform::new()
        .take(16)
        .arrival_scale(0.1)
        .fit(4)
        .apply(&batch);
    let mut serial_cluster = build_cluster_with(4, 77, CosimConfig::serial());
    let serial = BatchRun::new(&trace)
        .run(&mut serial_cluster, &mut ConservativeBackfill::new())
        .expect("serial completes");
    let cosim = CosimConfig::parallel().with_threads(2).with_min_active(2);
    let mut pooled_cluster = build_cluster_with(4, 77, cosim);
    let pooled = BatchRun::new(&trace)
        .run(&mut pooled_cluster, &mut ConservativeBackfill::new())
        .expect("pooled completes");
    assert_eq!(
        serial, pooled,
        "pooled windows must reproduce the serial SWF report bit for bit"
    );
    assert_eq!(serial.fingerprint, pooled.fingerprint);
}
