//! Policy-zoo integration tests: conservative reservation safety,
//! multi-queue aging, fair-share ordering, and walltime-kill
//! accounting, each driven through the full co-simulated engine.

use hpl_batch::{
    BatchJob, BatchRun, BatchTrace, ConservativeBackfill, Dfrs, FairShare, Fcfs, MultiQueue,
    SwfMap, SwfTrace, TraceTransform,
};
use hpl_cluster::{Cluster, Interconnect, NetConfig};
use hpl_core::HplClass;
use hpl_kernel::{KernelConfig, NodeBuilder};
use hpl_sim::{Rng, SimDuration};
use hpl_topology::Topology;

const FIXTURE: &str = include_str!("data/sp2_sample.swf");

fn build_cluster(nodes: usize, seed: u64) -> Cluster {
    let mut cluster = Cluster::builder()
        .nodes_with(nodes, move |i| {
            NodeBuilder::new(Topology::smp(2))
                .with_config(KernelConfig::hpl())
                .with_seed(Rng::for_run(seed, i as u64).next_u64())
                .with_hpc_class(Box::new(HplClass::new()))
                .build()
        })
        .fabric(Interconnect::flat(nodes, NetConfig::default()))
        .build();
    for i in 0..nodes {
        cluster.node_mut(i).run_for(SimDuration::from_millis(100));
    }
    cluster
}

fn build_gang_cluster(nodes: usize, seed: u64, epoch: SimDuration) -> Cluster {
    let mut cluster = Cluster::builder()
        .nodes_with(nodes, move |i| {
            let mut cfg = KernelConfig::hpl();
            cfg.gang_epoch = Some(epoch);
            NodeBuilder::new(Topology::smp(2))
                .with_config(cfg)
                .with_seed(Rng::for_run(seed, i as u64).next_u64())
                .with_hpc_class(Box::new(HplClass::new()))
                .build()
        })
        .fabric(Interconnect::flat(nodes, NetConfig::default()))
        .build();
    for i in 0..nodes {
        cluster.node_mut(i).run_for(SimDuration::from_millis(100));
    }
    cluster
}

fn swf_slice(nodes: u32, take: usize) -> BatchTrace {
    let t = SwfTrace::from_text(FIXTURE).unwrap();
    let (batch, _) = t.to_batch(&SwfMap::for_cluster(nodes).ns_per_sec(2_000.0));
    TraceTransform::new()
        .take(take)
        .arrival_scale(0.1)
        .apply(&batch)
}

fn bj(id: u32, submit_ms: u64, nodes: u32, compute_ms: u64) -> BatchJob {
    let nominal = 2 * compute_ms * 1_000_000;
    BatchJob {
        id,
        submit_ns: submit_ms * 1_000_000,
        nodes,
        ranks_per_node: 2,
        iters: 2,
        compute_ns: compute_ms * 1_000_000,
        bytes: 64,
        // Generous bracket: launch/teardown overhead alone is ~45 ms,
        // so enforced runs need the full margin (cf. synthetic()).
        est_runtime_ns: 4 * nominal + 60_000_000,
        user: 0,
        class: 0,
    }
}

/// The torture-oracle property on a real workload slice: across a
/// 40-job SWF run, no conservative admission ever delays an
/// earlier-queued job's reservation.
#[test]
fn conservative_never_delays_an_earlier_reservation_on_swf() {
    let trace = swf_slice(8, 40);
    let mut policy = ConservativeBackfill::new();
    let mut cluster = build_cluster(8, 1313);
    let report = BatchRun::new(&trace)
        .run(&mut cluster, &mut policy)
        .expect("completes");
    assert_eq!(report.outcomes.len(), 40);
    assert_eq!(report.occupancy_violations, 0);
    assert!(policy.admissions_total() > 0, "audit trail populated");
    assert_eq!(
        policy.reservation_violations(),
        0,
        "conservative admissions must respect every earlier reservation"
    );
    for d in policy.decisions() {
        assert!(d.respects_reservations(), "{d:?}");
    }
}

/// Conservative vs EASY on the same stream: both complete everything
/// with zero violations, and conservative is never *more* permissive
/// (its admission count through backfilling cannot exceed the queue
/// pressure EASY sees — here we just pin the reports' integrity and
/// determinism rather than a schedule-shape claim).
#[test]
fn conservative_is_deterministic_and_complete() {
    let trace = swf_slice(8, 25);
    let mk = || {
        let mut cluster = build_cluster(8, 99);
        let mut policy = ConservativeBackfill::new();
        BatchRun::new(&trace)
            .run(&mut cluster, &mut policy)
            .expect("completes")
    };
    let a = mk();
    let b = mk();
    assert_eq!(a, b, "same seed, same report, bit for bit");
    assert_eq!(a.jobs_lost, 0);
}

/// A starving low-class job eventually ages to the top class and runs
/// ahead of a stream of later high-class arrivals.
#[test]
fn multiqueue_aging_prevents_starvation() {
    // Class-1 wide job at t=0, then a stream of narrow class-0 jobs.
    // Without aging the wide job could wait for every narrow job;
    // with aging (default 20 ms step) it is dispatched before the
    // stream drains.
    let mut jobs = vec![BatchJob {
        class: 1,
        ..bj(0, 0, 4, 3)
    }];
    for i in 1..8 {
        jobs.push(bj(i, 2 * i as u64, 1, 3));
    }
    let trace = BatchTrace { jobs };
    let mut policy = MultiQueue::default();
    let mut cluster = build_cluster(4, 7);
    let report = BatchRun::new(&trace)
        .run(&mut cluster, &mut policy)
        .expect("completes");
    assert_eq!(report.outcomes.len(), 8);
    assert!(policy.dispatches() >= 8);
    let started = |id: u32| report.outcomes.iter().find(|o| o.id == id).unwrap().started;
    // The aged class-1 job must not start last.
    let latest = (1..8).map(started).max().unwrap();
    assert!(
        started(0) < latest,
        "aging must promote the class-1 job past the tail of the class-0 stream"
    );
}

/// Fair share on a two-user stream: the audit holds (no dispatch ever
/// skipped a poorer fittable user) and the heavy user's extra demand
/// cannot starve the light user.
#[test]
fn fairshare_audits_hold_and_balance_users() {
    // User 0 floods; user 1 submits sparse jobs of the same shape.
    let mut jobs = Vec::new();
    for i in 0..8 {
        jobs.push(BatchJob {
            user: 0,
            ..bj(i, i as u64, 2, 2)
        });
    }
    for i in 0..3 {
        jobs.push(BatchJob {
            user: 1,
            ..bj(8 + i, 3 + 2 * i as u64, 2, 2)
        });
    }
    let trace = BatchTrace { jobs };
    let mut policy = FairShare::new();
    let mut cluster = build_cluster(4, 5150);
    let report = BatchRun::new(&trace)
        .run(&mut cluster, &mut policy)
        .expect("completes");
    assert_eq!(report.outcomes.len(), 11);
    assert_eq!(policy.share_violations(), 0, "share order must hold");
    assert!(policy.dispatches_total() >= 11);
    let stats = &report.user_stats;
    assert_eq!(stats.len(), 2);
    let heavy = stats.iter().find(|s| s.user == 0).unwrap();
    let light = stats.iter().find(|s| s.user == 1).unwrap();
    assert_eq!(heavy.jobs, 8);
    assert_eq!(light.jobs, 3);
    assert!(
        light.mean_bounded_slowdown <= heavy.mean_bounded_slowdown,
        "the sparse user must not be starved by the flooding user: light {} heavy {}",
        light.mean_bounded_slowdown,
        heavy.mean_bounded_slowdown
    );
}

/// DFRS through the full gang-rotating engine on a real workload
/// slice: every reallocation conserves per-node shares, occupancy
/// stays within the fractional limit, the busy-node utilization
/// integral stays physical (≤ 1.0), and the whole run — shares
/// included — is deterministic bit for bit.
#[test]
fn dfrs_shares_conserve_and_runs_are_deterministic() {
    let trace = swf_slice(8, 25);
    let mk = || {
        let mut cluster = build_gang_cluster(8, 2024, SimDuration::from_micros(500));
        let mut policy = Dfrs::new(SimDuration::from_millis(1), 2024);
        let report = BatchRun::new(&trace)
            .run(&mut cluster, &mut policy)
            .expect("completes");
        let decisions: Vec<_> = policy.decisions().cloned().collect();
        (report, decisions, policy.share_violations())
    };
    let (a, da, va) = mk();
    let (b, db, _) = mk();
    assert_eq!(a, b, "same seed, same report, bit for bit");
    assert_eq!(da, db, "reallocation trail is deterministic too");
    assert_eq!(a.outcomes.len(), 25);
    assert_eq!(a.jobs_lost, 0);
    assert_eq!(a.occupancy_violations, 0);
    assert!(a.max_node_occupancy <= 2, "fractional limit is 2 jobs/node");
    assert_eq!(va, 0, "per-node share sums stay <= 1000 milli");
    assert!(!da.is_empty(), "audit trail populated");
    for d in &da {
        assert!(d.respects_shares(), "{d:?}");
    }
    assert!(
        a.utilization <= 1.0,
        "busy-node integral can't exceed capacity: {}",
        a.utilization
    );
}

/// Walltime enforcement: an under-estimated job is killed at its
/// estimate, the kill is reported, later jobs still run, and the
/// killed job's nodes are fully released (no occupancy leak).
#[test]
fn walltime_kill_releases_nodes_and_is_reported() {
    // Job 0 claims a 2 ms estimate but computes ~40 ms; job 1 arrives
    // later and needs the whole cluster, so it can only run if the
    // kill released job 0's nodes.
    let doomed = BatchJob {
        est_runtime_ns: 2_000_000,
        user: 3,
        ..bj(0, 0, 2, 20)
    };
    let follower = bj(1, 1, 4, 1);
    let trace = BatchTrace {
        jobs: vec![doomed, follower],
    };
    let mut cluster = build_cluster(4, 23);
    let report = BatchRun::new(&trace)
        .walltime(1.0)
        .run(&mut cluster, &mut Fcfs)
        .expect("completes");
    assert_eq!(report.jobs_killed, 1, "the under-estimated job dies");
    assert_eq!(report.jobs_lost, 0, "killed is completed, not lost");
    let o0 = report.outcomes.iter().find(|o| o.id == 0).unwrap();
    assert!(o0.killed);
    assert_eq!(o0.user, 3);
    assert!(
        o0.run < SimDuration::from_millis(40),
        "killed well before its natural ~80 ms runtime, ran {:?}",
        o0.run
    );
    let o1 = report.outcomes.iter().find(|o| o.id == 1).unwrap();
    assert!(!o1.killed, "the follower completes normally");
    assert!(
        o1.started >= o0.ended,
        "full-width follower needed the kill"
    );
    // No occupancy leak: every node is free after the run.
    for n in 0..cluster.len() {
        assert_eq!(
            cluster.active_jobs_on(n),
            0,
            "node {n} must be released after the kill"
        );
    }
    // Per-user accounting sees the kill.
    let u3 = report.user_stats.iter().find(|s| s.user == 3).unwrap();
    assert_eq!(u3.killed, 1);
    // Without enforcement the same trace runs job 0 to completion.
    let mut cluster = build_cluster(4, 23);
    let relaxed = BatchRun::new(&trace)
        .run(&mut cluster, &mut Fcfs)
        .expect("completes");
    assert_eq!(relaxed.jobs_killed, 0);
    assert!(relaxed.outcomes.iter().all(|o| !o.killed));
    assert!(
        relaxed.outcomes.iter().find(|o| o.id == 0).unwrap().run > o0.run,
        "unenforced run must outlive the killed one"
    );
}

/// Walltime kills under honest SWF estimates: the fixture's
/// deliberately under-requested records get killed, everything else
/// survives, and the engine still completes every job.
#[test]
fn honest_swf_estimates_produce_kills() {
    let t = SwfTrace::from_text(FIXTURE).unwrap();
    let (batch, _) = t.to_batch(&SwfMap::for_cluster(8).ns_per_sec(2_000.0).honest());
    let trace = TraceTransform::new()
        .take(30)
        .arrival_scale(0.1)
        .apply(&batch);
    let mut cluster = build_cluster(8, 404);
    let report = BatchRun::new(&trace)
        .walltime(1.0)
        .run(&mut cluster, &mut Fcfs)
        .expect("completes");
    assert_eq!(
        report.outcomes.len(),
        30,
        "every job ends, one way or another"
    );
    assert!(
        report.jobs_killed > 0,
        "the fixture's under-estimating users must hit the limit"
    );
    assert!(report.jobs_killed < 30, "but not everyone dies");
    assert_eq!(report.jobs_lost, 0);
    for n in 0..cluster.len() {
        assert_eq!(cluster.active_jobs_on(n), 0, "no occupancy leak");
    }
}
