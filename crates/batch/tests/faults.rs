//! Batch-level fault handling: crash-triggered requeue, checkpoint/
//! restart recovery, and determinism of faulty runs across repeats and
//! event-loop flavours.

use hpl_batch::{BatchJob, BatchReport, BatchRun, BatchTrace, CheckpointSpec, Fcfs};
use hpl_cluster::{Cluster, CosimConfig, FaultPlan, Interconnect, NetConfig};
use hpl_core::HplClass;
use hpl_kernel::{KernelConfig, NodeBuilder};
use hpl_sim::{Rng, SimDuration, SimTime};
use hpl_topology::Topology;

const WARMUP_MS: u64 = 100;

fn ms(v: u64) -> SimTime {
    SimTime::from_nanos(v * 1_000_000)
}

fn build_cluster(nodes: usize, seed: u64, faults: FaultPlan, cosim: CosimConfig) -> Cluster {
    let mut cluster = Cluster::builder()
        .nodes_with(nodes, move |i| {
            NodeBuilder::new(Topology::smp(2))
                .with_config(KernelConfig::hpl())
                .with_seed(Rng::for_run(seed, i as u64).next_u64())
                .with_hpc_class(Box::new(HplClass::new()))
                .build()
        })
        .fabric(Interconnect::flat(nodes, NetConfig::default()))
        .cosim(cosim)
        .faults(faults)
        .build();
    for i in 0..nodes {
        cluster
            .node_mut(i)
            .run_for(SimDuration::from_millis(WARMUP_MS));
    }
    cluster
}

/// One 2-node job long enough (8 × 2 ms iterations, ~60 ms of engine
/// time) to be mid-flight when a crash lands tens of ms after the
/// batch epoch.
fn long_job_trace() -> BatchTrace {
    let iters = 8u32;
    let compute_ns = 2_000_000u64;
    let nominal = iters as u64 * compute_ns;
    BatchTrace {
        jobs: vec![BatchJob {
            id: 0,
            submit_ns: 0,
            nodes: 2,
            ranks_per_node: 2,
            iters,
            compute_ns,
            bytes: 64,
            est_runtime_ns: 2 * nominal + 30_000_000,
            user: 0,
            class: 0,
        }],
    }
}

/// Crash node 1 at `crash_ms` past the epoch, restart it 6 ms later.
fn crash_plan(crash_ms: u64) -> FaultPlan {
    FaultPlan::default()
        .with_seed(9)
        .crash(1, ms(WARMUP_MS + crash_ms))
        .restart(1, ms(WARMUP_MS + crash_ms + 6))
}

fn run_crashy(plan: FaultPlan, ckpt: Option<CheckpointSpec>, cosim: CosimConfig) -> BatchReport {
    let mut cluster = build_cluster(2, 42, plan, cosim);
    let trace = long_job_trace();
    let mut run = BatchRun::new(&trace);
    if let Some(c) = ckpt {
        run = run.checkpoint(c);
    }
    run.run(&mut cluster, &mut Fcfs).expect("run completes")
}

#[test]
fn crash_requeues_job_and_it_still_completes() {
    let report = run_crashy(crash_plan(6), None, CosimConfig::serial());
    assert_eq!(report.outcomes.len(), 1, "no job may be lost to a crash");
    assert_eq!(report.jobs_lost, 0);
    assert_eq!(report.requeues, 1, "one crash, one requeue");
    assert_eq!(report.occupancy_violations, 0);
    let o = &report.outcomes[0];
    assert_eq!(o.requeues, 1);
    // The second attempt launches only after the restart brings node 1
    // back, and wait spans the whole sojourn from the original submit.
    assert!(
        o.started >= ms(WARMUP_MS + 12),
        "restart gates the relaunch"
    );
    assert!(o.wait >= SimDuration::from_millis(12));
}

#[test]
fn crash_and_restart_before_submit_leave_no_trace_on_the_job() {
    // A node that crashes and recovers while the queue is still empty
    // must not perturb the job at all: the run is bit-identical to the
    // fault-free one.
    let plan = FaultPlan::default()
        .with_seed(9)
        .crash(1, ms(WARMUP_MS + 1))
        .restart(1, ms(WARMUP_MS + 2));
    let mut trace = long_job_trace();
    trace.jobs[0].submit_ns = 5_000_000;
    let run = |plan: FaultPlan| {
        let mut cluster = build_cluster(2, 42, plan, CosimConfig::serial());
        BatchRun::new(&trace)
            .run(&mut cluster, &mut Fcfs)
            .expect("run completes")
    };
    let faulty = run(plan);
    let clean = run(FaultPlan::none());
    assert_eq!(faulty.outcomes, clean.outcomes);
    assert_eq!(faulty.makespan, clean.makespan);
}

#[test]
fn checkpoint_restart_resumes_instead_of_recomputing() {
    let ckpt = CheckpointSpec {
        every_iters: 1,
        cost: SimDuration::from_micros(100),
        restore: SimDuration::from_micros(300),
    };
    // Crash ~40 ms into a ~60 ms job: several iterations have
    // checkpointed by then.
    let scratch = run_crashy(crash_plan(40), None, CosimConfig::serial());
    let resumed = run_crashy(crash_plan(40), Some(ckpt), CosimConfig::serial());
    for r in [&scratch, &resumed] {
        assert_eq!(r.outcomes.len(), 1);
        assert_eq!(r.requeues, 1);
        assert_eq!(r.jobs_lost, 0);
    }
    // The scratch rerun recomputes all 8 iterations; the checkpointed
    // rerun replays only the tail not covered by committed checkpoints
    // (plus restore and per-checkpoint overhead) — it must finish
    // first.
    let end = |r: &BatchReport| r.outcomes[0].ended;
    assert!(
        end(&resumed) < end(&scratch),
        "checkpointed rerun must beat recompute-from-scratch: {:?} vs {:?}",
        end(&resumed),
        end(&scratch)
    );
}

#[test]
fn crashy_run_is_deterministic_and_flavour_invariant() {
    let ckpt = CheckpointSpec {
        every_iters: 2,
        cost: SimDuration::from_micros(100),
        restore: SimDuration::from_micros(300),
    };
    let a = run_crashy(crash_plan(20), Some(ckpt), CosimConfig::serial());
    let b = run_crashy(crash_plan(20), Some(ckpt), CosimConfig::serial());
    assert_eq!(a, b, "same plan, same report, bit for bit");
    let pooled = run_crashy(
        crash_plan(20),
        Some(ckpt),
        CosimConfig::parallel().with_threads(2).with_min_active(2),
    );
    assert_eq!(
        a, pooled,
        "pooled windows must reproduce the crashy serial report bit for bit"
    );
}
