//! Two-level scheduling integration tests: deterministic batch runs,
//! FCFS-vs-EASY divergence, and the EASY reservation-safety invariants.

use hpl_batch::{
    AllocPolicy, BatchJob, BatchReport, BatchRun, BatchTrace, EasyBackfill, Fcfs, Oversubscribed,
};
use hpl_cluster::{Cluster, CosimConfig, Interconnect, NetConfig};
use hpl_core::HplClass;
use hpl_kernel::noise::NoiseProfile;
use hpl_kernel::{KernelConfig, NodeBuilder};
use hpl_mpi::SchedMode;
use hpl_sim::{Rng, SimDuration};
use hpl_topology::Topology;

fn build_cluster_with(nodes: usize, seed: u64, cosim: CosimConfig) -> Cluster {
    let mut cluster = Cluster::builder()
        .nodes_with(nodes, move |i| {
            NodeBuilder::new(Topology::smp(2))
                .with_config(KernelConfig::hpl())
                .with_seed(Rng::for_run(seed, i as u64).next_u64())
                .with_hpc_class(Box::new(HplClass::new()))
                .build()
        })
        .fabric(Interconnect::flat(nodes, NetConfig::default()))
        .cosim(cosim)
        .build();
    for i in 0..nodes {
        cluster.node_mut(i).run_for(SimDuration::from_millis(100));
    }
    cluster
}

fn build_cluster(nodes: usize, seed: u64) -> Cluster {
    build_cluster_with(nodes, seed, CosimConfig::serial())
}

fn bj(id: u32, submit_ms: u64, nodes: u32, iters: u32, compute_ms: u64) -> BatchJob {
    let nominal = iters as u64 * compute_ms * 1_000_000;
    BatchJob {
        id,
        submit_ns: submit_ms * 1_000_000,
        nodes,
        ranks_per_node: 2,
        iters,
        compute_ns: compute_ms * 1_000_000,
        bytes: 64,
        est_runtime_ns: 2 * nominal + 30_000_000,
        user: 0,
        class: 0,
    }
}

/// A hand-built backfill-friendly stream on 4 nodes: a 2-node starter,
/// then a full-width head that blocks, then short narrow jobs EASY can
/// slide into the shadow window while FCFS makes them wait.
fn backfill_friendly() -> BatchTrace {
    BatchTrace {
        jobs: vec![
            bj(0, 0, 2, 3, 2),
            bj(1, 1, 4, 3, 2),
            bj(2, 2, 2, 2, 1),
            bj(3, 3, 1, 2, 1),
        ],
    }
}

fn run(trace: &BatchTrace, policy: &mut dyn AllocPolicy, seed: u64) -> BatchReport {
    let mut cluster = build_cluster(4, seed);
    BatchRun::new(trace)
        .run(&mut cluster, policy)
        .expect("batch run completes")
}

#[test]
fn same_seed_identical_report_twice() {
    let trace = backfill_friendly();
    type PolicyMaker = fn() -> Box<dyn AllocPolicy>;
    let mks: [(&str, PolicyMaker); 2] = [
        ("fcfs", || Box::new(Fcfs)),
        ("easy", || Box::new(EasyBackfill::new())),
    ];
    for (name, mk) in mks {
        let a = run(&trace, mk().as_mut(), 42);
        let b = run(&trace, mk().as_mut(), 42);
        assert_eq!(
            a, b,
            "{name}: same seed must reproduce the report bit for bit"
        );
        assert_eq!(a.outcomes.len(), trace.jobs.len());
        assert_eq!(a.occupancy_violations, 0, "{name}");
    }
}

#[test]
fn fcfs_and_easy_produce_different_schedules() {
    let trace = backfill_friendly();
    let fcfs = run(&trace, &mut Fcfs, 42);
    let easy = run(&trace, &mut EasyBackfill::new(), 42);

    let starts = |r: &BatchReport| {
        let mut s: Vec<(u32, u64)> = r
            .outcomes
            .iter()
            .map(|o| (o.id, o.started.as_nanos()))
            .collect();
        s.sort_unstable();
        s
    };
    assert_ne!(
        starts(&fcfs),
        starts(&easy),
        "backfilling must reorder the start schedule"
    );
    // Job 2 jumps the blocked full-width head under EASY. (Job 3 cannot
    // backfill — job 2 takes the only free nodes and the rest are
    // reserved — so no per-job claim is made for it; the mean-wait
    // ordering is asserted in the utilization test.)
    let wait = |r: &BatchReport, id: u32| {
        r.outcomes
            .iter()
            .find(|o| o.id == id)
            .expect("job ran")
            .wait
    };
    assert!(
        wait(&easy, 2) < wait(&fcfs, 2),
        "easy {:?} vs fcfs {:?}",
        wait(&easy, 2),
        wait(&fcfs, 2)
    );
}

#[test]
fn easy_utilization_at_least_fcfs_on_backfill_friendly_trace() {
    let trace = backfill_friendly();
    let fcfs = run(&trace, &mut Fcfs, 42);
    let easy = run(&trace, &mut EasyBackfill::new(), 42);
    assert!(
        easy.utilization >= fcfs.utilization - 0.01,
        "easy {:.3} must not fall below fcfs {:.3}",
        easy.utilization,
        fcfs.utilization
    );
    assert!(
        easy.mean_wait <= fcfs.mean_wait,
        "backfilling should not raise mean wait on this trace: easy {:?} fcfs {:?}",
        easy.mean_wait,
        fcfs.mean_wait
    );
}

/// Seeded property sweep: across random synthetic traces, every audited
/// backfill decision respects the head job's reservation, and the head
/// actually starts no later than the promised shadow time (estimates in
/// the generator are deliberately generous, so the promise is binding).
#[test]
fn easy_backfill_never_delays_the_head_reservation() {
    let mut audited = 0usize;
    for seed in 0..8u64 {
        let trace = BatchTrace::synthetic(seed, 8, 4);
        let mut policy = EasyBackfill::new();
        let mut cluster = build_cluster(4, seed ^ 0xE451);
        let report = BatchRun::new(&trace)
            .run(&mut cluster, &mut policy)
            .expect("batch run completes");
        assert_eq!(report.occupancy_violations, 0, "seed {seed}");
        let slack = SimDuration::from_millis(1);
        for d in policy.decisions() {
            assert!(
                d.respects_reservation(),
                "seed {seed}: backfill of job {} violates head {}'s reservation: {d:?}",
                d.job,
                d.head
            );
            let head = report
                .outcomes
                .iter()
                .find(|o| o.id == d.head)
                .expect("head job completed");
            assert!(
                head.started <= d.shadow + slack,
                "seed {seed}: head {} started at {:?}, promised by {:?}",
                d.head,
                head.started,
                d.shadow
            );
            audited += 1;
        }
    }
    assert!(
        audited > 0,
        "sweep produced no backfill decisions — generator lost its teeth"
    );
}

#[test]
fn oversubscribed_coschedules_two_jobs_per_node() {
    // Two simultaneous single-node jobs on a one-node cluster: FCFS
    // serialises them, the fractional policy stacks them.
    let trace = BatchTrace {
        jobs: vec![bj(0, 0, 1, 3, 2), bj(1, 0, 1, 3, 2)],
    };
    let mk_cluster = || build_cluster(1, 7);

    let mut cluster = mk_cluster();
    let fcfs = BatchRun::new(&trace).run(&mut cluster, &mut Fcfs).unwrap();
    assert_eq!(fcfs.max_node_occupancy, 1);

    let mut cluster = mk_cluster();
    let over = BatchRun::new(&trace)
        .run(&mut cluster, &mut Oversubscribed)
        .unwrap();
    assert_eq!(over.max_node_occupancy, 2, "co-scheduling must stack jobs");
    assert_eq!(over.occupancy_violations, 0, "limit 2 is still a limit");
    // Sharing a node shrinks wait but stretches runtimes.
    assert!(over.mean_wait < fcfs.mean_wait);
    let run_of = |r: &BatchReport, id: u32| r.outcomes.iter().find(|o| o.id == id).unwrap().run;
    assert!(
        run_of(&over, 0).max(run_of(&over, 1)) > run_of(&fcfs, 0).min(run_of(&fcfs, 1)),
        "co-scheduled jobs should contend at the OS level"
    );
}

/// The oversub×HPL differential: with gang rotation the HPL kernel's
/// 2-jobs-per-node makespan lands within 25% of CFS on the same
/// stream (the cell the bench previously could not gate), the no-gang
/// control reproduces the old serialising behavior — a strictly wider
/// gap — and the gang knob is bit-inert wherever no two gangs ever
/// co-reside: on CFS nodes (no gang-aware class) and on dedicated
/// FCFS allocation (one job per node).
#[test]
fn gang_rotation_closes_the_oversubscribed_hpl_gap() {
    const NODES: u32 = 4;
    let seed = 0xBA7C;
    let trace = BatchTrace::synthetic(seed, 12, NODES);
    let build = |hpc: bool, gang: Option<SimDuration>| {
        let mut cluster = Cluster::builder()
            .nodes_with(NODES as usize, move |i| {
                let mut kc = if hpc {
                    KernelConfig::hpl()
                } else {
                    KernelConfig::default()
                };
                kc.gang_epoch = gang;
                let mut b = NodeBuilder::new(Topology::smp(2))
                    .with_config(kc)
                    .with_noise(NoiseProfile::standard(2))
                    .with_seed(Rng::for_run(seed, i as u64).next_u64());
                if hpc {
                    b = b.with_hpc_class(Box::new(HplClass::new()));
                }
                b.build()
            })
            .fabric(Interconnect::flat(NODES as usize, NetConfig::default()))
            .build();
        for i in 0..NODES as usize {
            cluster.node_mut(i).run_for(SimDuration::from_millis(300));
        }
        cluster
    };
    let run = |hpc: bool, gang: Option<SimDuration>, policy: &mut dyn AllocPolicy| {
        BatchRun::new(&trace)
            .mode(if hpc { SchedMode::Hpc } else { SchedMode::Cfs })
            .run(&mut build(hpc, gang), policy)
            .expect("completes")
    };
    let epoch = Some(SimDuration::from_micros(500));

    // Inertness controls: the knob must not move a single byte where
    // rotation can never engage.
    let cfs_over = run(false, None, &mut Oversubscribed);
    let cfs_over_gang = run(false, epoch, &mut Oversubscribed);
    assert_eq!(
        cfs_over, cfs_over_gang,
        "CFS has no gang-aware class; the knob must be bit-inert"
    );
    let hpl_fcfs = run(true, None, &mut Fcfs);
    let hpl_fcfs_gang = run(true, epoch, &mut Fcfs);
    assert_eq!(
        hpl_fcfs, hpl_fcfs_gang,
        "dedicated nodes never co-locate two gangs; the knob must be bit-inert"
    );

    // No-gang control: deterministic, and it reproduces the old
    // serialising gap — strictly slower than the rotated run.
    let hpl_over = run(true, None, &mut Oversubscribed);
    assert_eq!(
        hpl_over,
        run(true, None, &mut Oversubscribed),
        "no-gang oversub×HPL must replay bit for bit"
    );
    let hpl_over_gang = run(true, epoch, &mut Oversubscribed);
    assert!(
        hpl_over.makespan > hpl_over_gang.makespan,
        "without rotation co-resident HPL jobs serialise: no-gang {:?} vs gang {:?}",
        hpl_over.makespan,
        hpl_over_gang.makespan
    );

    // The closed gap: rotated HPL oversubscription within 25% of CFS.
    let bound = cfs_over.makespan.as_secs_f64() * 1.25;
    assert!(
        hpl_over_gang.makespan.as_secs_f64() <= bound,
        "gang rotation must close the oversub×HPL gap: gang {:?} vs CFS {:?}",
        hpl_over_gang.makespan,
        cfs_over.makespan
    );
    assert_eq!(hpl_over_gang.occupancy_violations, 0);
    assert!(hpl_over_gang.utilization <= 1.0);
}

#[test]
fn batch_events_reach_observers_and_chrome_trace() {
    use hpl_kernel::observe::validate_chrome_trace;
    use hpl_kernel::{ChromeTraceSink, MetricsSink};

    let trace = backfill_friendly();
    let mut cluster = build_cluster(4, 3);
    let metrics_id = cluster
        .node_mut(0)
        .attach_observer(Box::new(MetricsSink::new()));
    let sink_ids: Vec<_> = (0..4)
        .map(|i| {
            cluster
                .node_mut(i)
                .attach_observer(Box::new(ChromeTraceSink::new(200_000)))
        })
        .collect();
    let report = BatchRun::new(&trace)
        .run(&mut cluster, &mut EasyBackfill::new())
        .unwrap();
    assert_eq!(report.outcomes.len(), 4);

    let m = cluster
        .node(0)
        .observer::<MetricsSink>(metrics_id)
        .unwrap()
        .metrics();
    assert_eq!(m.job_submits, 4);
    assert_eq!(m.job_starts, 4);
    assert_eq!(m.job_ends, 4);
    assert_eq!(m.job_wait_ns.count(), 4);
    assert!(m.batch_queue_depth.count() >= 8);

    let json = cluster
        .export_chrome_trace(&sink_ids)
        .expect("sinks resolve");
    let stats = validate_chrome_trace(&json).expect("valid trace JSON");
    assert!(stats.complete_events > 0);
    assert!(json.contains("job submit j0"));
    assert!(json.contains("job start j1"));
    assert!(json.contains("job end j3"));
}

#[test]
fn trace_file_round_trip_drives_engine() {
    // A trace written by hand in the text format runs end to end.
    let text = "\
batch-trace v2
job 0 submit 0 nodes 2 rpn 2 iters 2 compute 2000000 bytes 64 est 40000000 user 1 class 0
job 1 submit 500000 nodes 1 rpn 2 iters 2 compute 1000000 bytes 64 est 35000000 user 0 class 1
";
    let trace = BatchTrace::from_text(text).expect("parses");
    assert_eq!(trace.to_text(), text);
    // v1 text (no user/class) still parses, defaulting both to 0.
    let v1 = "\
batch-trace v1
job 0 submit 0 nodes 1 rpn 2 iters 2 compute 1000 bytes 64 est 40000
";
    let old = BatchTrace::from_text(v1).expect("v1 parses");
    assert_eq!(old.jobs[0].user, 0);
    assert_eq!(old.jobs[0].class, 0);
    let mut cluster = build_cluster(2, 11);
    let report = BatchRun::new(&trace)
        .run(&mut cluster, &mut Fcfs)
        .expect("completes");
    assert_eq!(report.outcomes.len(), 2);
    assert!(report.makespan > SimDuration::ZERO);
    assert!(report.utilization > 0.0 && report.utilization <= 1.0);
}

/// The host-side execution policy is invisible at the batch level: a
/// pooled-window run must reproduce the serial [`BatchReport`] bit for
/// bit — same outcomes, same makespan, same fingerprint. Threads are
/// forced to 2 so the pool genuinely crosses host threads even on a
/// single-core CI box, and the density threshold is dropped so small
/// windows still take the pooled path.
#[test]
fn parallel_batch_run_matches_serial_bit_for_bit() {
    let trace = backfill_friendly();
    type PolicyMaker = fn() -> Box<dyn AllocPolicy>;
    let mks: [(&str, PolicyMaker); 2] = [
        ("fcfs", || Box::new(Fcfs)),
        ("easy", || Box::new(EasyBackfill::new())),
    ];
    for (name, mk) in mks {
        let mut serial_cluster = build_cluster(4, 42);
        let serial = BatchRun::new(&trace)
            .run(&mut serial_cluster, mk().as_mut())
            .expect("serial batch run completes");
        let cosim = CosimConfig::parallel().with_threads(2).with_min_active(2);
        let mut parallel_cluster = build_cluster_with(4, 42, cosim);
        let parallel = BatchRun::new(&trace)
            .run(&mut parallel_cluster, mk().as_mut())
            .expect("parallel batch run completes");
        assert_eq!(
            serial, parallel,
            "{name}: pooled windows must reproduce the serial report bit for bit"
        );
    }
}

/// Observer purity holds at the batch level too: attaching sinks must
/// not change the schedule.
#[test]
fn observed_batch_run_matches_unobserved() {
    let trace = backfill_friendly();
    let unobserved = run(&trace, &mut EasyBackfill::new(), 21);
    let mut cluster = build_cluster(4, 21);
    for i in 0..4 {
        cluster
            .node_mut(i)
            .attach_observer(Box::new(hpl_kernel::MetricsSink::new()));
    }
    let observed = BatchRun::new(&trace)
        .run(&mut cluster, &mut EasyBackfill::new())
        .unwrap();
    assert_eq!(unobserved, observed);
}
