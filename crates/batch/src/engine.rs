//! The job lifecycle engine: submit → queued → allocated → running →
//! completed (or failed → requeued), advanced inside the cosim event
//! loop.
//!
//! [`BatchRun`] owns the whole run: it replays a [`BatchTrace`] against
//! a [`Cluster`], consulting an [`AllocPolicy`] at every lockstep window
//! boundary. Arrivals, allocation decisions, completions and fault
//! handling are all functions of virtual time and seeded state, so a
//! batch run is exactly as deterministic as the underlying
//! co-simulation — the same `(cluster seed, fault plan, trace, policy)`
//! tuple produces the same [`BatchReport`] bit for bit, on both
//! event-loop flavours.
//!
//! Decision points are quantised to lockstep windows (a few µs, the
//! interconnect lookahead), the cluster-level analogue of a real batch
//! scheduler's polling interval.
//!
//! ## Failure semantics
//!
//! When a node crash (see `hpl_cluster::FaultPlan`) kills a running
//! job, the engine requeues it at the tail of the queue — the job loses
//! its position, the standard cluster-manager default — keeping its
//! original submit time so wait and slowdown measure the full sojourn.
//! With [`BatchConfig::checkpoint`] set, jobs write periodic
//! checkpoints and a requeued job restarts from the last checkpoint
//! every surviving node committed (plus a restore penalty) instead of
//! from scratch.

use crate::policy::{AllocPolicy, ClusterView, QueuedJob, RunningJob};
use crate::trace::{BatchJob, BatchTrace};
use hpl_cluster::{Cluster, ClusterJobHandle, JobCoordinator, Placement};
use hpl_kernel::{RunOutcome, SchedEvent, TaskState};
use hpl_mpi::{JobSpec, MpiOp, SchedMode};
use hpl_sim::{SimDuration, SimTime};

/// Periodic checkpointing for batch jobs (see [`BatchConfig`]).
///
/// Every `every_iters` iterations each rank quiesces, writes its state
/// (`cost` of compute per rank) and commits at a per-node checkpoint
/// barrier. A job requeued after a crash restarts from the last
/// checkpoint committed by **every surviving node** (the consistent
/// cut), paying `restore` once, instead of recomputing from iteration
/// zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Checkpoint interval in job iterations (≥ 1).
    pub every_iters: u32,
    /// Per-rank cost of writing one checkpoint.
    pub cost: SimDuration,
    /// One-time per-rank cost of restoring from a checkpoint on
    /// restart.
    pub restore: SimDuration,
}

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// OS-level scheduling mode every job launches under (the CFS-vs-HPL
    /// axis of the two-level study).
    pub mode: SchedMode,
    /// Cluster-wide dispatched-event budget (hang guard).
    pub max_events: u64,
    /// Bounded-slowdown runtime floor τ: slowdown =
    /// max((wait + run) / max(run, τ), 1). The standard guard against
    /// tiny jobs dominating the mean; τ = 1 ms suits ms-scale jobs.
    pub slowdown_tau: SimDuration,
    /// Periodic checkpoint/restart for every job; `None` (the default)
    /// means failed jobs recompute from scratch.
    pub checkpoint: Option<CheckpointSpec>,
    /// Walltime enforcement: kill a job once it has occupied its nodes
    /// for `factor ×` its runtime estimate (`1.0` = kill exactly at
    /// estimate expiry, the production default on most clusters).
    /// Killed jobs are not requeued — they end at the kill, flagged
    /// [`JobOutcome::killed`] and counted in
    /// [`BatchReport::jobs_killed`]. `None` (the default) never kills,
    /// which preserves every pre-existing run bit for bit.
    pub walltime_factor: Option<f64>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            mode: SchedMode::Hpc,
            max_events: 600_000_000,
            slowdown_tau: SimDuration::from_millis(1),
            checkpoint: None,
            walltime_factor: None,
        }
    }
}

/// Per-job result row.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Trace id.
    pub id: u32,
    /// Nodes it ran on.
    pub nodes: u32,
    /// Submission time (batch epoch + trace offset).
    pub submitted: SimTime,
    /// Launch time.
    pub started: SimTime,
    /// Time the last launcher tree exited (nodes released).
    pub ended: SimTime,
    /// Queue wait (`started - submitted`).
    pub wait: SimDuration,
    /// Node-occupancy time (`ended - started`).
    pub run: SimDuration,
    /// Bounded slowdown (see [`BatchConfig::slowdown_tau`]).
    pub bounded_slowdown: f64,
    /// Times this job was requeued after a node crash before it
    /// finally completed.
    pub requeues: u32,
    /// Submitting user (trace field; fair-share key).
    pub user: u32,
    /// True iff the job was killed at its walltime limit
    /// ([`BatchConfig::walltime_factor`]) instead of completing.
    pub killed: bool,
}

/// Everything a batch run produced. `PartialEq` so determinism tests
/// can demand bit-identical reports across repeated runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Policy name.
    pub policy: &'static str,
    /// Per-job rows, in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// First submit → last completion.
    pub makespan: SimDuration,
    /// Busy-node time over capacity: the union of each node's job-
    /// occupancy intervals, summed over nodes, divided by
    /// (cluster nodes × makespan). A node hosting two co-resident jobs
    /// (Oversubscribed/DFRS) counts its wall-clock time once, so the
    /// figure never exceeds 1.0 by double-counting node-seconds.
    pub utilization: f64,
    /// Mean queue wait over all jobs.
    pub mean_wait: SimDuration,
    /// Mean bounded slowdown over all jobs.
    pub mean_bounded_slowdown: f64,
    /// Deepest the queue ever got.
    pub max_queue_depth: u32,
    /// Highest concurrent-job count observed on any node.
    pub max_node_occupancy: u32,
    /// Decision points at which some node exceeded the policy's
    /// occupancy limit (must be 0; the torture oracle checks it).
    pub occupancy_violations: u64,
    /// Total crash-triggered requeues across all jobs.
    pub requeues: u64,
    /// Jobs that never completed (must be 0 on an `Ok` report: every
    /// submitted job either finishes or is requeued until it does; the
    /// torture oracle checks it).
    pub jobs_lost: u64,
    /// Jobs killed at their walltime limit (0 unless
    /// [`BatchConfig::walltime_factor`] is set).
    pub jobs_killed: u64,
    /// Per-user wait/slowdown breakdown, ascending by user id. Empty
    /// only if the trace was empty.
    pub user_stats: Vec<UserStats>,
    /// Cluster scheduler-state fingerprint at completion, for
    /// cross-event-loop differential checks.
    pub fingerprint: u64,
}

/// Per-user aggregate over a report's outcomes — the fairness lens:
/// fair-share should narrow the spread of `mean_bounded_slowdown`
/// across users relative to FCFS on the same trace.
#[derive(Debug, Clone, PartialEq)]
pub struct UserStats {
    /// User id (trace field).
    pub user: u32,
    /// Jobs this user completed (killed ones included).
    pub jobs: u32,
    /// Of those, jobs killed at their walltime limit.
    pub killed: u32,
    /// Mean queue wait over the user's jobs.
    pub mean_wait: SimDuration,
    /// Mean bounded slowdown over the user's jobs.
    pub mean_bounded_slowdown: f64,
}

impl BatchReport {
    /// Max per-job bounded slowdown.
    pub fn max_bounded_slowdown(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.bounded_slowdown)
            .fold(1.0, f64::max)
    }
}

/// Reserved ids below the first job's channel range (keeps clear of the
/// default `id_base = 0` used by standalone launches during warmup).
const ID_BASE_START: u64 = 10_000;
/// Safety gap between consecutive jobs' id ranges.
const ID_GAP: u64 = 16;

/// A queued job plus its crash-recovery state: how many leading
/// iterations the next launch may skip (covered by committed
/// checkpoints) and how often it has been requeued.
struct Queued {
    job: BatchJob,
    skip_iters: u32,
    requeues: u32,
}

struct Running {
    job: BatchJob,
    spec: JobSpec,
    handle: ClusterJobHandle,
    submitted: SimTime,
    started: SimTime,
    skip_iters: u32,
    requeues: u32,
    killed: bool,
}

/// Build the MPI program for one launch attempt. With `ckpt` set, a
/// checkpoint op follows every `every_iters`-th iteration except the
/// last (finishing *is* the commit); `skip_iters` leading iterations
/// are replaced by a single restore compute when recovering. With
/// `ckpt = None` and `skip_iters = 0` this emits exactly the
/// pre-fault-era op list, so existing runs are untouched bit for bit.
fn job_spec(j: &BatchJob, id_base: u64, ckpt: Option<&CheckpointSpec>, skip_iters: u32) -> JobSpec {
    let mut ops = Vec::new();
    if skip_iters > 0 {
        let c = ckpt.expect("skipping iterations requires a checkpoint spec");
        ops.push(MpiOp::Compute { mean: c.restore });
    }
    for it in skip_iters..j.iters {
        ops.push(MpiOp::Compute {
            mean: SimDuration::from_nanos(j.compute_ns),
        });
        ops.push(MpiOp::Allreduce { bytes: j.bytes });
        if let Some(c) = ckpt {
            if (it + 1) % c.every_iters == 0 && it + 1 < j.iters {
                ops.push(MpiOp::Checkpoint { cost: c.cost });
            }
        }
    }
    JobSpec::new(j.nprocs(), ops)
        .with_nodes(j.nodes)
        .with_id_base(id_base)
}

/// One job attempt's node occupancy: the nodes it held and the interval
/// it held them for. Collected for every attempt — completed, killed,
/// or crashed-and-requeued — so utilization can integrate true busy
/// time per node.
struct BusySpan {
    placement: Vec<usize>,
    from: SimTime,
    until: SimTime,
}

/// Busy node-seconds: per node, the measure of the union of its
/// occupancy intervals (co-resident jobs overlap instead of adding), of
/// the first `nnodes` node indices, summed over nodes. This is the
/// utilization numerator — with dedicated nodes it equals
/// Σ(nodes × run), under oversubscription it is strictly smaller than
/// that double-counting sum and can never exceed `nnodes × makespan`.
fn busy_node_seconds(spans: &[BusySpan], nnodes: usize) -> f64 {
    let mut per_node: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); nnodes];
    for s in spans {
        for &n in &s.placement {
            per_node[n].push((s.from, s.until));
        }
    }
    let mut total = 0.0f64;
    for spans in per_node.iter_mut() {
        spans.sort();
        let mut cur: Option<(SimTime, SimTime)> = None;
        for &(from, until) in spans.iter() {
            match cur {
                Some((cs, ce)) if from <= ce => cur = Some((cs, ce.max(until))),
                Some((cs, ce)) => {
                    total += ce.since(cs).as_secs_f64();
                    cur = Some((from, until));
                }
                None => cur = Some((from, until)),
            }
        }
        if let Some((cs, ce)) = cur {
            total += ce.since(cs).as_secs_f64();
        }
    }
    total
}

/// Time the job released its last node: the max `perf` exit time over
/// its placement. `None` while any tree is still alive.
fn job_end_time(cluster: &Cluster, h: &ClusterJobHandle) -> Option<SimTime> {
    let mut end = SimTime::ZERO;
    for (j, &n) in h.placement.iter().enumerate() {
        let t = cluster.node(n).tasks.get(h.perf_pids[j]);
        if t.state != TaskState::Dead {
            return None;
        }
        end = end.max(t.exited_at?);
    }
    Some(end)
}

/// Builder for one batch run — the construction-API counterpart of
/// `hpl_cluster::ClusterBuilder`.
///
/// ```ignore
/// let report = BatchRun::new(&trace)
///     .mode(SchedMode::Hpc)
///     .checkpoint(CheckpointSpec { every_iters: 2, cost, restore })
///     .run(&mut cluster, &mut policy)?;
/// ```
#[derive(Debug)]
pub struct BatchRun<'a> {
    trace: &'a BatchTrace,
    cfg: BatchConfig,
}

impl<'a> BatchRun<'a> {
    /// Start describing a run of `trace` with default [`BatchConfig`].
    pub fn new(trace: &'a BatchTrace) -> Self {
        BatchRun {
            trace,
            cfg: BatchConfig::default(),
        }
    }

    /// Replace the whole config at once.
    pub fn config(mut self, cfg: BatchConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// OS-level scheduling mode for every job.
    pub fn mode(mut self, mode: SchedMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Cluster-wide dispatched-event budget.
    pub fn max_events(mut self, max_events: u64) -> Self {
        self.cfg.max_events = max_events;
        self
    }

    /// Bounded-slowdown runtime floor τ.
    pub fn slowdown_tau(mut self, tau: SimDuration) -> Self {
        self.cfg.slowdown_tau = tau;
        self
    }

    /// Enable periodic checkpoint/restart for every job.
    pub fn checkpoint(mut self, spec: CheckpointSpec) -> Self {
        self.cfg.checkpoint = Some(spec);
        self
    }

    /// Enforce walltime limits: kill jobs at `factor ×` their runtime
    /// estimate (see [`BatchConfig::walltime_factor`]).
    pub fn walltime(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "walltime factor below 1.0 kills on launch");
        self.cfg.walltime_factor = Some(factor);
        self
    }

    /// Execute the run. The cluster should be pre-warmed (daemon
    /// populations settled) and idle; the batch epoch is the latest
    /// node clock at entry. Returns the filled [`BatchReport`], or the
    /// failing [`RunOutcome`] if the co-simulation deadlocks or the
    /// event budget runs out. Batch-level lifecycle events are
    /// published to node 0's observers ([`hpl_kernel::Node::publish`]).
    pub fn run(
        self,
        cluster: &mut Cluster,
        policy: &mut dyn AllocPolicy,
    ) -> Result<BatchReport, RunOutcome> {
        run_batch_inner(cluster, self.trace, policy, &self.cfg, None)
    }

    /// Execute the run with a coordination runtime interposed: every
    /// launch goes through `coord` (so it can shim ranks), and every
    /// fractional share the policy hands out is *realized* on the nodes
    /// via [`JobCoordinator::set_share`] — in addition to being
    /// published as the advisory [`SchedEvent::JobShare`] it always
    /// was. [`Self::run`] is this with no coordinator, byte for byte.
    pub fn run_coordinated(
        self,
        cluster: &mut Cluster,
        policy: &mut dyn AllocPolicy,
        coord: &mut dyn JobCoordinator,
    ) -> Result<BatchReport, RunOutcome> {
        run_batch_inner(cluster, self.trace, policy, &self.cfg, Some(coord))
    }
}

fn run_batch_inner(
    cluster: &mut Cluster,
    trace: &BatchTrace,
    policy: &mut dyn AllocPolicy,
    cfg: &BatchConfig,
    mut coordinator: Option<&mut dyn JobCoordinator>,
) -> Result<BatchReport, RunOutcome> {
    let nnodes = cluster.len();
    if let Some(c) = &cfg.checkpoint {
        assert!(c.every_iters >= 1, "checkpoint interval must be >= 1");
    }
    for j in &trace.jobs {
        assert!(
            (j.nodes as usize) <= nnodes,
            "job {} wants {} nodes but the cluster has {nnodes}",
            j.id,
            j.nodes
        );
    }
    let epoch = (0..nnodes)
        .map(|i| cluster.node(i).now())
        .max()
        .expect("cluster is non-empty");
    let start_events = cluster.events_processed();

    // Trace order in, arrival order out (stable on ties by trace order).
    let mut pending: Vec<(SimTime, BatchJob)> = trace
        .jobs
        .iter()
        .map(|j| (epoch + SimDuration::from_nanos(j.submit_ns), j.clone()))
        .collect();
    pending.sort_by_key(|(at, j)| (*at, j.id));
    let mut pending = std::collections::VecDeque::from(pending);

    let mut queue: Vec<Queued> = Vec::new();
    let mut submitted_at: Vec<(u32, SimTime)> = Vec::new();
    let mut running: Vec<Running> = Vec::new();
    let mut outcomes: Vec<JobOutcome> = Vec::new();
    let mut busy_spans: Vec<BusySpan> = Vec::new();
    let mut next_id_base = ID_BASE_START;
    let mut max_queue_depth = 0u32;
    let mut max_node_occupancy = 0u32;
    let mut occupancy_violations = 0u64;
    let mut total_requeues = 0u64;
    let limit = policy.occupancy_limit();
    let total_jobs = trace.jobs.len();

    while outcomes.len() < total_jobs {
        let now = (0..nnodes)
            .map(|i| cluster.node(i).now())
            .max()
            .expect("cluster is non-empty");

        // 1. Enforce walltime limits: a live job whose occupancy has
        //    reached `factor ×` its estimate is killed on the spot
        //    (its launcher trees die with node-local exit stamps, so
        //    the harvest below collects it this same decision point
        //    and its nodes free immediately). Crashed jobs are left to
        //    the requeue path; a job that finished inside the window
        //    reaps zero tasks and completes normally.
        if let Some(factor) = cfg.walltime_factor {
            for r in running.iter_mut() {
                if r.killed || cluster.job_failed(&r.handle) {
                    continue;
                }
                let limit = r.job.est_runtime().mul_f64(factor);
                if now.since(r.started) >= limit && cluster.cancel_job(&r.handle) > 0 {
                    r.killed = true;
                }
            }
        }

        // 2. Harvest completions and crash casualties. The failure
        //    check comes first: a crashed job's perf pids are stale
        //    (its node may have restarted), so `job_end_time` must
        //    never look at them.
        let mut i = 0;
        while i < running.len() {
            if cluster.job_failed(&running[i].handle) {
                let r = running.swap_remove(i);
                // The attempt occupied its nodes until this decision
                // point (the crash landed inside the last window).
                busy_spans.push(BusySpan {
                    placement: r.handle.placement.clone(),
                    from: r.started,
                    until: now,
                });
                // Restart point: the last checkpoint every surviving
                // node committed. Generations count commits *in this
                // attempt*, on top of whatever the attempt already
                // skipped.
                let mut skip = 0;
                if let Some(c) = &cfg.checkpoint {
                    let committed = cluster
                        .job_survivors(&r.handle)
                        .iter()
                        .map(|&j| {
                            cluster
                                .node(r.handle.placement[j])
                                .sync
                                .barrier_generation(r.spec.ckpt_barrier_id(j as u32))
                        })
                        .min()
                        .unwrap_or(0);
                    skip = (r.skip_iters + committed as u32 * c.every_iters)
                        .min(r.job.iters.saturating_sub(1));
                }
                total_requeues += 1;
                cluster.node_mut(0).publish(SchedEvent::JobSubmit {
                    job: r.job.id,
                    queue_depth: queue.len() as u32 + 1,
                });
                queue.push(Queued {
                    job: r.job,
                    skip_iters: skip,
                    requeues: r.requeues + 1,
                });
                max_queue_depth = max_queue_depth.max(queue.len() as u32);
                continue;
            }
            if let Some(ended) = job_end_time(cluster, &running[i].handle) {
                let r = running.swap_remove(i);
                busy_spans.push(BusySpan {
                    placement: r.handle.placement.clone(),
                    from: r.started,
                    until: ended,
                });
                let wait = r.started.since(r.submitted);
                let run = ended.since(r.started);
                let floor = run.max(cfg.slowdown_tau);
                let slowdown = ((wait + run).as_secs_f64() / floor.as_secs_f64()).max(1.0);
                outcomes.push(JobOutcome {
                    id: r.job.id,
                    nodes: r.job.nodes,
                    submitted: r.submitted,
                    started: r.started,
                    ended,
                    wait,
                    run,
                    bounded_slowdown: slowdown,
                    requeues: r.requeues,
                    user: r.job.user,
                    killed: r.killed,
                });
                cluster.node_mut(0).publish(SchedEvent::JobEnd {
                    job: r.job.id,
                    queue_depth: queue.len() as u32,
                });
            } else {
                i += 1;
            }
        }

        // 3. Admit arrivals that have come due.
        while pending.front().is_some_and(|(at, _)| *at <= now) {
            let (at, job) = pending.pop_front().expect("checked front");
            submitted_at.push((job.id, at));
            queue.push(Queued {
                job: job.clone(),
                skip_iters: 0,
                requeues: 0,
            });
            max_queue_depth = max_queue_depth.max(queue.len() as u32);
            cluster.node_mut(0).publish(SchedEvent::JobSubmit {
                job: job.id,
                queue_depth: queue.len() as u32,
            });
        }

        // 4. Allocate until the policy passes.
        loop {
            if queue.is_empty() {
                break;
            }
            let view = ClusterView {
                now,
                occupancy: (0..nnodes)
                    .map(|n| cluster.active_jobs_on(n) as u32)
                    .collect(),
                running: running
                    .iter()
                    .map(|r| RunningJob {
                        id: r.job.id,
                        placement: r.handle.placement.clone(),
                        est_end: r.started + r.job.est_runtime(),
                    })
                    .collect(),
                down: (0..nnodes).map(|n| !cluster.node_available(n)).collect(),
            };
            let pview: Vec<QueuedJob> = queue
                .iter()
                .map(|q| QueuedJob {
                    id: q.job.id,
                    nodes: q.job.nodes,
                    submitted: submitted_at
                        .iter()
                        .find(|(id, _)| *id == q.job.id)
                        .expect("queued jobs were submitted")
                        .1,
                    est_runtime: q.job.est_runtime(),
                    user: q.job.user,
                    class: q.job.class,
                })
                .collect();
            let Some(alloc) = policy.select(&pview, &view) else {
                break;
            };
            let q = queue.remove(alloc.queue_idx);
            let submitted = pview[alloc.queue_idx].submitted;
            let spec = job_spec(&q.job, next_id_base, cfg.checkpoint.as_ref(), q.skip_iters);
            next_id_base = *spec.id_range().end() + 1 + ID_GAP;
            let handle = match &mut coordinator {
                Some(c) => c.launch(cluster, &spec, cfg.mode, Placement::on(&alloc.placement)),
                None => cluster.launch(&spec, cfg.mode, Placement::on(&alloc.placement)),
            };
            // Batch-level start stamp: the decision-point clock (node
            // clocks inside one lockstep window can lag it by less than
            // the lookahead, and `submitted <= now` must hold).
            let started = now;
            cluster.node_mut(0).publish(SchedEvent::JobStart {
                job: q.job.id,
                queue_depth: queue.len() as u32,
                waited: started.since(submitted),
            });
            running.push(Running {
                job: q.job,
                spec,
                handle,
                submitted,
                started,
                skip_iters: q.skip_iters,
                requeues: q.requeues,
                killed: false,
            });
        }

        // 5. Fractional-share reallocation (DFRS): the policy may
        //    recompute per-job CPU shares at its own period; each share
        //    is published so observers and the torture oracle can audit
        //    conservation. Slot-based policies return nothing here and
        //    stay untouched bit for bit.
        let share_view = ClusterView {
            now,
            occupancy: (0..nnodes)
                .map(|n| cluster.active_jobs_on(n) as u32)
                .collect(),
            running: running
                .iter()
                .map(|r| RunningJob {
                    id: r.job.id,
                    placement: r.handle.placement.clone(),
                    est_end: r.started + r.job.est_runtime(),
                })
                .collect(),
            down: (0..nnodes).map(|n| !cluster.node_available(n)).collect(),
        };
        for (node, job, share_milli) in policy.share_update(&share_view) {
            cluster.node_mut(0).publish(SchedEvent::JobShare {
                job,
                node: node as u32,
                share_milli,
            });
            // With a coordinator installed the share stops being
            // advisory: realize it on the node, addressed by the job's
            // gang id (its id base — unique among co-residents by the
            // launch-time disjointness rule).
            if let Some(c) = &mut coordinator {
                if let Some(r) = running.iter().find(|r| r.job.id == job) {
                    c.set_share(cluster, node, r.spec.id_base, share_milli);
                }
            }
        }

        // 6. Occupancy audit against the policy's promise.
        let mut over = false;
        for n in 0..nnodes {
            let occ = cluster.active_jobs_on(n) as u32;
            max_node_occupancy = max_node_occupancy.max(occ);
            if occ > limit {
                over = true;
            }
        }
        if over {
            occupancy_violations += 1;
        }

        if outcomes.len() == total_jobs {
            break;
        }

        // 7. Advance virtual time one lockstep window.
        if !cluster.step_window() {
            if running.is_empty() && !pending.is_empty() {
                // Every queue drained while waiting for the next
                // arrival (possible only on fully tickless idle
                // clusters): jump the clocks to the arrival.
                let jump_to = pending.front().expect("non-empty").0;
                for n in 0..nnodes {
                    // Crashed nodes stay frozen — a restart event will
                    // re-clock them when (if) it lands.
                    if cluster.node_down(n) {
                        continue;
                    }
                    cluster.node_mut(n).run_until_time(jump_to);
                }
                continue;
            }
            return Err(RunOutcome::Deadlock);
        }
        if cluster.events_processed() - start_events > cfg.max_events {
            return Err(RunOutcome::BudgetExhausted);
        }
    }

    let first_submit = outcomes.iter().map(|o| o.submitted).min().unwrap_or(epoch);
    let last_end = outcomes.iter().map(|o| o.ended).max().unwrap_or(epoch);
    let makespan = last_end.since(first_submit);
    let node_seconds = busy_node_seconds(&busy_spans, nnodes);
    let denom = nnodes as f64 * makespan.as_secs_f64();
    let utilization = if denom > 0.0 {
        node_seconds / denom
    } else {
        0.0
    };
    let n = outcomes.len().max(1) as f64;
    let mean_wait = SimDuration::from_nanos(
        (outcomes.iter().map(|o| o.wait.as_nanos()).sum::<u64>() as f64 / n) as u64,
    );
    let mean_bounded_slowdown = outcomes.iter().map(|o| o.bounded_slowdown).sum::<f64>() / n;
    let jobs_lost = (total_jobs - outcomes.len()) as u64;
    let jobs_killed = outcomes.iter().filter(|o| o.killed).count() as u64;

    // Per-user breakdown, ascending by user id (BTreeMap order) so the
    // report stays bit-comparable across runs.
    let mut by_user: std::collections::BTreeMap<u32, Vec<&JobOutcome>> =
        std::collections::BTreeMap::new();
    for o in &outcomes {
        by_user.entry(o.user).or_default().push(o);
    }
    let user_stats: Vec<UserStats> = by_user
        .into_iter()
        .map(|(user, rows)| {
            let n = rows.len() as f64;
            UserStats {
                user,
                jobs: rows.len() as u32,
                killed: rows.iter().filter(|o| o.killed).count() as u32,
                mean_wait: SimDuration::from_nanos(
                    (rows.iter().map(|o| o.wait.as_nanos()).sum::<u64>() as f64 / n) as u64,
                ),
                mean_bounded_slowdown: rows.iter().map(|o| o.bounded_slowdown).sum::<f64>() / n,
            }
        })
        .collect();

    Ok(BatchReport {
        policy: policy.name(),
        outcomes,
        makespan,
        utilization,
        mean_wait,
        mean_bounded_slowdown,
        max_queue_depth,
        max_node_occupancy,
        occupancy_violations,
        requeues: total_requeues,
        jobs_lost,
        jobs_killed,
        user_stats,
        fingerprint: cluster.state_fingerprint(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(placement: &[usize], from_ns: u64, until_ns: u64) -> BusySpan {
        BusySpan {
            placement: placement.to_vec(),
            from: SimTime::from_nanos(from_ns),
            until: SimTime::from_nanos(until_ns),
        }
    }

    #[test]
    fn busy_seconds_count_coresident_jobs_once() {
        // Two jobs fully overlapping on node 0 (oversubscription): the
        // node was busy 1 s, not 2 s.
        let spans = [span(&[0], 0, 1_000_000_000), span(&[0], 0, 1_000_000_000)];
        assert_eq!(busy_node_seconds(&spans, 2), 1.0);
        // Partial overlap merges into one interval per node.
        let spans = [
            span(&[0], 0, 600_000_000),
            span(&[0], 400_000_000, 1_000_000_000),
        ];
        assert_eq!(busy_node_seconds(&spans, 1), 1.0);
        // Disjoint intervals add; a multi-node span counts every node.
        let spans = [
            span(&[0, 1], 0, 500_000_000),
            span(&[0], 700_000_000, 900_000_000),
        ];
        assert_eq!(busy_node_seconds(&spans, 2), 1.2);
        assert_eq!(busy_node_seconds(&[], 4), 0.0);
    }

    #[test]
    fn busy_seconds_bound_oversubscribed_utilization() {
        // The old Σ(nodes × run) numerator would report 2.0 node-
        // seconds here against 1.0 of capacity (utilization 2.0); the
        // interval union caps at the node's wall-clock time.
        let spans = [span(&[0], 0, 1_000_000_000), span(&[0], 0, 1_000_000_000)];
        let capacity = 1.0 * 1.0; // 1 node × 1 s makespan
        assert!(busy_node_seconds(&spans, 1) <= capacity);
    }
}
