//! # hpl-batch — two-level scheduling: a cluster batch scheduler above
//! the co-simulated kernel nodes
//!
//! The paper isolates OS-level scheduling noise on a single dedicated
//! job, but real HPC nodes receive their jobs from a *cluster-level*
//! scheduler, and the interaction between the two levels is what the
//! related work (dynamic fractional resource scheduling vs. batch
//! scheduling; two-level scheduling studies) attacks directly. This
//! crate turns the mechanistic cluster of `hpl-cluster` into a two-level
//! scheduling laboratory:
//!
//! * [`BatchTrace`] — replayable job streams: seeded synthetic arrival
//!   processes and a round-trippable `batch-trace v1` text format;
//! * [`AllocPolicy`] — the pluggable allocation policy trait, with
//!   [`Fcfs`], [`EasyBackfill`] (head-job reservation + audited shadow-
//!   window backfilling), [`Oversubscribed`] (two jobs per node, the
//!   anti-dedicated-node contrast) and [`Dfrs`] (fractional shares with
//!   audited periodic reallocation, realised at the OS level by gang
//!   rotation) implementations;
//! * [`BatchRun`] — the job lifecycle engine (submit → queued →
//!   allocated → running → completed, or failed → requeued) advanced
//!   inside the cosim event loop, so arrivals, allocation decisions,
//!   completions and crash-triggered requeues are deterministic
//!   virtual-time events; it fills a [`BatchReport`] with per-job wait,
//!   bounded slowdown, makespan, utilization and requeue counts.
//!   [`CheckpointSpec`] adds periodic checkpoint/restart so requeued
//!   jobs resume from their last committed checkpoint.
//!
//! Batch-level lifecycle events (`JobSubmit`/`JobStart`/`JobEnd`, queue
//! depth) are published through the node-0 [`hpl_kernel::SchedObserver`]
//! stream, so a single Chrome trace shows the batch scheduler's
//! decisions above the kernel's.
//!
//! ```
//! use hpl_batch::{BatchRun, BatchTrace, Fcfs};
//! use hpl_cluster::{Cluster, Interconnect, NetConfig};
//! use hpl_core::hpl_node_builder;
//! use hpl_sim::{Rng, SimDuration};
//! use hpl_topology::Topology;
//!
//! let mut cluster = Cluster::builder()
//!     .nodes_with(2, |i| {
//!         hpl_node_builder(Topology::smp(2))
//!             .with_seed(Rng::for_run(42, i as u64).next_u64())
//!             .build()
//!     })
//!     .fabric(Interconnect::flat(2, NetConfig::default()))
//!     .build();
//! for i in 0..2 {
//!     cluster.node_mut(i).run_for(SimDuration::from_millis(100));
//! }
//! let trace = BatchTrace::synthetic(7, 3, 2);
//! let report = BatchRun::new(&trace)
//!     .run(&mut cluster, &mut Fcfs)
//!     .expect("batch run completes");
//! assert_eq!(report.outcomes.len(), 3);
//! assert_eq!(report.occupancy_violations, 0);
//! assert_eq!(report.requeues, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod policy;
pub mod swf;
pub mod trace;

pub use engine::{BatchConfig, BatchReport, BatchRun, CheckpointSpec, JobOutcome, UserStats};
pub use policy::{
    AllocPolicy, Allocation, BackfillDecision, ClusterView, ConservativeBackfill, Dfrs,
    DfrsDecision, EasyBackfill, FairShare, FairShareDispatch, Fcfs, MultiQueue, Oversubscribed,
    QueuedJob, ReservationDecision, RunningJob,
};
pub use swf::{SwfJob, SwfMap, SwfTrace, TraceTransform};
pub use trace::{BatchJob, BatchTrace};
