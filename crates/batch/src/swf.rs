//! Standard Workload Format ingestion: production job traces from the
//! Parallel Workloads Archive, feeding the [`BatchTrace`] pipeline.
//!
//! The SWF is the lingua franca of batch-scheduling research: one line
//! per job, 18 whitespace-separated integer fields, `-1` for a missing
//! value, and a header of `;`-prefixed comment lines carrying machine
//! metadata (`; MaxNodes: 128`). This module provides:
//!
//! * [`SwfTrace`] — a faithful, round-trippable in-memory form of an
//!   SWF file ([`SwfTrace::from_text`] / [`SwfTrace::to_text`]), with
//!   header-directive lookup and the standard submit-time
//!   normalization (real traces are *not* always sorted by submit
//!   time; see [`SwfTrace::normalized`]);
//! * [`SwfMap`] — the explicit, seedless mapping from SWF records
//!   (seconds, processors, users, queues) onto [`BatchJob`]s
//!   (virtual-time nanoseconds, bulk-synchronous MPI shapes) that the
//!   co-simulated cluster can actually run;
//! * [`TraceTransform`] — a pure trace-to-trace layer (time/size
//!   rescaling, load shaping, max-jobs truncation) so one vendored
//!   fixture can drive anything from a 50-job smoke to a
//!   thousands-of-jobs sweep over hundreds of nodes.
//!
//! Every step is a deterministic function of its inputs: the same SWF
//! text, map and transform produce the same `BatchTrace` byte for
//! byte, which is what lets SWF-driven bench cells gate on bit-exact
//! replay and serial-vs-pooled equality.

use crate::trace::{BatchJob, BatchTrace, LAUNCH_OVERHEAD_NS};

/// One SWF record — the 18 standard fields, in file order. Times are
/// in seconds, `-1` means "not available" (except the job number,
/// which is always present and non-negative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwfJob {
    /// 1. Job number.
    pub job_id: u32,
    /// 2. Submit time, seconds from trace start.
    pub submit: i64,
    /// 3. Wait time in the queue, seconds.
    pub wait: i64,
    /// 4. Run time (wall clock), seconds.
    pub run_time: i64,
    /// 5. Number of allocated processors.
    pub procs: i64,
    /// 6. Average CPU time used per processor, seconds.
    pub cpu_time: i64,
    /// 7. Used memory per node, KB.
    pub mem: i64,
    /// 8. Requested number of processors.
    pub req_procs: i64,
    /// 9. Requested time (user runtime estimate / walltime limit),
    ///    seconds.
    pub req_time: i64,
    /// 10. Requested memory per node, KB.
    pub req_mem: i64,
    /// 11. Completion status (1 = completed, 0 = failed, 5 =
    ///     cancelled).
    pub status: i64,
    /// 12. User ID.
    pub user: i64,
    /// 13. Group ID.
    pub group: i64,
    /// 14. Executable (application) number.
    pub exe: i64,
    /// 15. Queue number.
    pub queue: i64,
    /// 16. Partition number.
    pub partition: i64,
    /// 17. Preceding job number.
    pub prev_job: i64,
    /// 18. Think time from preceding job, seconds.
    pub think_time: i64,
}

impl SwfJob {
    /// Effective processor count: allocated if recorded, else
    /// requested; `None` when both are missing (the `-1` semantics).
    pub fn effective_procs(&self) -> Option<u32> {
        if self.procs > 0 {
            Some(self.procs as u32)
        } else if self.req_procs > 0 {
            Some(self.req_procs as u32)
        } else {
            None
        }
    }

    /// Effective runtime estimate in seconds: the user's request if
    /// recorded, else the actual runtime (an oracle estimate, the
    /// standard fallback in the literature); `None` when both are
    /// missing.
    pub fn effective_req_time(&self) -> Option<i64> {
        if self.req_time > 0 {
            Some(self.req_time)
        } else if self.run_time > 0 {
            Some(self.run_time)
        } else {
            None
        }
    }
}

/// A parsed SWF file: raw header comments plus the job records, in
/// file order. Round-trippable: [`Self::to_text`] followed by
/// [`Self::from_text`] reproduces the value exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SwfTrace {
    /// Header/interleaved comment lines, `;` prefix stripped, leading
    /// whitespace trimmed, in file order.
    pub comments: Vec<String>,
    /// The job records, in file order (not necessarily sorted by
    /// submit time — see [`Self::normalized`]).
    pub jobs: Vec<SwfJob>,
}

impl SwfTrace {
    /// Parse SWF text. `;` lines are collected as comments, blank
    /// lines are skipped, and every other line must be exactly 18
    /// integer fields — anything else is an error naming the line.
    pub fn from_text(text: &str) -> Result<SwfTrace, String> {
        let mut comments = Vec::new();
        let mut jobs = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix(';') {
                comments.push(rest.trim_start().to_string());
                continue;
            }
            let fields = line
                .split_whitespace()
                .map(|tok| {
                    tok.parse::<i64>()
                        .map_err(|_| format!("line {}: bad field {tok:?}", lineno + 1))
                })
                .collect::<Result<Vec<i64>, String>>()?;
            let f: [i64; 18] = fields.try_into().map_err(|v: Vec<i64>| {
                format!(
                    "line {}: expected 18 fields, got {}: {line:?}",
                    lineno + 1,
                    v.len()
                )
            })?;
            if f[0] < 0 {
                return Err(format!("line {}: negative job number", lineno + 1));
            }
            jobs.push(SwfJob {
                job_id: f[0] as u32,
                submit: f[1],
                wait: f[2],
                run_time: f[3],
                procs: f[4],
                cpu_time: f[5],
                mem: f[6],
                req_procs: f[7],
                req_time: f[8],
                req_mem: f[9],
                status: f[10],
                user: f[11],
                group: f[12],
                exe: f[13],
                queue: f[14],
                partition: f[15],
                prev_job: f[16],
                think_time: f[17],
            });
        }
        Ok(SwfTrace { comments, jobs })
    }

    /// Serialise back to SWF text: comments first (in original order),
    /// then one 18-field line per job.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for c in &self.comments {
            out.push_str("; ");
            out.push_str(c);
            out.push('\n');
        }
        for j in &self.jobs {
            out.push_str(&format!(
                "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
                j.job_id,
                j.submit,
                j.wait,
                j.run_time,
                j.procs,
                j.cpu_time,
                j.mem,
                j.req_procs,
                j.req_time,
                j.req_mem,
                j.status,
                j.user,
                j.group,
                j.exe,
                j.queue,
                j.partition,
                j.prev_job,
                j.think_time
            ));
        }
        out
    }

    /// Look up an integer header directive (`; Key: value`), e.g.
    /// `MaxNodes`, `MaxProcs`, `UnixStartTime`. Keys match
    /// case-sensitively; the first hit wins.
    pub fn directive(&self, key: &str) -> Option<i64> {
        self.comments.iter().find_map(|c| {
            let (k, v) = c.split_once(':')?;
            if k.trim() == key {
                v.trim().parse::<i64>().ok()
            } else {
                None
            }
        })
    }

    /// The machine's node count from the header, if declared.
    pub fn max_nodes(&self) -> Option<u32> {
        self.directive("MaxNodes")
            .filter(|&n| n > 0)
            .map(|n| n as u32)
    }

    /// The machine's processor count from the header, if declared.
    pub fn max_procs(&self) -> Option<u32> {
        self.directive("MaxProcs")
            .filter(|&n| n > 0)
            .map(|n| n as u32)
    }

    /// Submit-time normalization: jobs sorted by `(submit, job_id)`
    /// and rebased so the earliest submit is 0. Archive traces are
    /// numbered by completion or logging order and their submit times
    /// are not always monotone, but the batch engine (like a real
    /// scheduler) wants a replayable arrival stream.
    pub fn normalized(&self) -> SwfTrace {
        let mut jobs = self.jobs.clone();
        jobs.sort_by_key(|j| (j.submit, j.job_id));
        let base = jobs
            .iter()
            .map(|j| j.submit)
            .filter(|&s| s >= 0)
            .min()
            .unwrap_or(0);
        for j in &mut jobs {
            j.submit = (j.submit - base).max(0);
        }
        SwfTrace {
            comments: self.comments.clone(),
            jobs,
        }
    }

    /// Convert to a runnable [`BatchTrace`] under `map`, after
    /// [`Self::normalized`]. Jobs with no usable runtime or processor
    /// count (`-1` everywhere) and jobs that never ran (status 0/5
    /// with zero runtime) are dropped — the count of dropped records
    /// is returned alongside so callers can report coverage instead of
    /// silently shrinking the workload.
    pub fn to_batch(&self, map: &SwfMap) -> (BatchTrace, usize) {
        map.validate();
        let norm = self.normalized();
        let mut jobs = Vec::with_capacity(norm.jobs.len());
        let mut dropped = 0usize;
        for j in &norm.jobs {
            let (Some(procs), Some(run)) =
                (j.effective_procs(), (j.run_time > 0).then_some(j.run_time))
            else {
                dropped += 1;
                continue;
            };
            let nodes = procs
                .div_ceil(map.ranks_per_node)
                .clamp(1, map.cluster_nodes);
            let ranks_per_node = map.ranks_per_node.min(procs);
            let submit_ns = scale_secs(j.submit.max(0), map.ns_per_sec);
            let runtime_ns = scale_secs(run, map.ns_per_sec).max(map.iters as u64);
            let compute_ns = (runtime_ns / map.iters as u64).max(1);
            let nominal = compute_ns * map.iters as u64;
            // The co-sim realizes each iteration as the max over nprocs
            // exponential draws, so the bracket estimate scales the
            // nominal by 2 + log2(nprocs) plus launch overhead — the
            // same arithmetic BatchTrace::synthetic uses. The honest
            // estimate is the user's own request, which under- as well
            // as over-estimates, exactly what walltime enforcement
            // needs to bite on.
            let nprocs = (nodes * ranks_per_node) as u64;
            let est_factor = 2 + (u64::BITS - nprocs.leading_zeros()) as u64;
            let bracket = est_factor * nominal + 2 * LAUNCH_OVERHEAD_NS;
            let est_runtime_ns = if map.honest_estimates {
                let req = j.effective_req_time().unwrap_or(run);
                scale_secs(req, map.ns_per_sec).max(LAUNCH_OVERHEAD_NS)
            } else {
                let req = j.effective_req_time().unwrap_or(run);
                scale_secs(req, map.ns_per_sec).max(bracket)
            };
            jobs.push(BatchJob {
                id: j.job_id,
                submit_ns,
                nodes,
                ranks_per_node,
                iters: map.iters,
                compute_ns,
                bytes: map.bytes,
                est_runtime_ns,
                user: j.user.max(0) as u32,
                class: j.queue.max(0) as u32,
            });
        }
        (BatchTrace { jobs }, dropped)
    }
}

fn scale_secs(secs: i64, ns_per_sec: f64) -> u64 {
    (secs.max(0) as f64 * ns_per_sec).round() as u64
}

/// The SWF → [`BatchJob`] mapping: how archive seconds and processors
/// become co-simulable virtual-time MPI jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwfMap {
    /// Width of the simulated cluster; wider requests are clamped (the
    /// standard down-scaling move when replaying a big machine's trace
    /// on a smaller one).
    pub cluster_nodes: u32,
    /// Ranks per node for every generated job; SWF processor counts
    /// are converted to node counts at this density.
    pub ranks_per_node: u32,
    /// Virtual nanoseconds per trace second — the time compression.
    /// The default `10_000.0` maps an hour-long archive job to 36 ms
    /// of virtual time, long enough to schedule meaningfully and short
    /// enough to sweep thousands of jobs.
    pub ns_per_sec: f64,
    /// Bulk-synchronous iterations each job's compute is split into
    /// (each ends in an Allreduce).
    pub iters: u32,
    /// Allreduce payload per iteration, bytes.
    pub bytes: u64,
    /// `false` (default): estimates are the user's request, floored by
    /// the generous max-of-exponentials bracket so reservations hold —
    /// the right setting for backfill studies. `true`: estimates are
    /// the raw scaled request, which real users routinely undershoot —
    /// the right setting for walltime-kill studies.
    pub honest_estimates: bool,
}

impl Default for SwfMap {
    fn default() -> Self {
        SwfMap {
            cluster_nodes: 16,
            ranks_per_node: 2,
            ns_per_sec: 10_000.0,
            iters: 2,
            bytes: 64,
            honest_estimates: false,
        }
    }
}

impl SwfMap {
    /// Default mapping onto a `nodes`-wide cluster.
    pub fn for_cluster(nodes: u32) -> Self {
        SwfMap {
            cluster_nodes: nodes,
            ..Self::default()
        }
    }

    /// Set the time compression (virtual ns per trace second).
    pub fn ns_per_sec(mut self, ns: f64) -> Self {
        self.ns_per_sec = ns;
        self
    }

    /// Use raw user estimates (see [`SwfMap::honest_estimates`]).
    pub fn honest(mut self) -> Self {
        self.honest_estimates = true;
        self
    }

    fn validate(&self) {
        assert!(self.cluster_nodes >= 1, "cluster must have nodes");
        assert!(self.ranks_per_node >= 1, "jobs need ranks");
        assert!(self.iters >= 1, "jobs need iterations");
        assert!(
            self.ns_per_sec.is_finite() && self.ns_per_sec > 0.0,
            "time scale must be positive"
        );
    }
}

/// A pure, deterministic trace-to-trace transform: truncation, load
/// shaping, time and size rescaling, tiling. Operations compose in a
/// fixed order regardless of builder-call order: truncate → arrival
/// scale → runtime scale → width fit → tile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceTransform {
    max_jobs: Option<usize>,
    arrival_scale: f64,
    runtime_scale: f64,
    fit_nodes: Option<u32>,
    tile: u32,
}

impl Default for TraceTransform {
    fn default() -> Self {
        TraceTransform {
            max_jobs: None,
            arrival_scale: 1.0,
            runtime_scale: 1.0,
            fit_nodes: None,
            tile: 1,
        }
    }
}

impl TraceTransform {
    /// The identity transform.
    pub fn new() -> Self {
        Self::default()
    }

    /// Keep only the first `n` jobs (by submit order).
    pub fn take(mut self, n: usize) -> Self {
        self.max_jobs = Some(n);
        self
    }

    /// Multiply every submit offset by `s`. `s < 1` compresses
    /// arrivals — the load-shaping knob: halving inter-arrival gaps
    /// doubles offered load without touching job shapes.
    pub fn arrival_scale(mut self, s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "arrival scale must be >= 0");
        self.arrival_scale = s;
        self
    }

    /// Multiply every per-job compute and runtime estimate by `s`
    /// (time rescaling of the jobs themselves).
    pub fn runtime_scale(mut self, s: f64) -> Self {
        assert!(s.is_finite() && s > 0.0, "runtime scale must be positive");
        self.runtime_scale = s;
        self
    }

    /// Cap job widths at `nodes` (size rescaling onto a narrower
    /// cluster).
    pub fn fit(mut self, nodes: u32) -> Self {
        assert!(nodes >= 1, "cannot fit onto zero nodes");
        self.fit_nodes = Some(nodes);
        self
    }

    /// Replicate the (truncated, rescaled) trace `n` times end to end:
    /// copy `c` repeats the whole arrival pattern shifted to start
    /// where copy `c-1`'s last arrival landed, with ids renumbered past
    /// the previous copy's range. Tiling is how a short SWF fragment
    /// becomes a capacity-scale workload — thousands of jobs with the
    /// *original trace's* arrival statistics, not a synthetic
    /// generator's.
    pub fn tile(mut self, n: u32) -> Self {
        assert!(n >= 1, "tile count must be >= 1");
        self.tile = n;
        self
    }

    /// Apply to `trace`, producing a new trace. Pure: same input, same
    /// output, no seeds involved.
    pub fn apply(&self, trace: &BatchTrace) -> BatchTrace {
        let mut jobs = trace.jobs.clone();
        if let Some(n) = self.max_jobs {
            jobs.truncate(n);
        }
        for j in &mut jobs {
            j.submit_ns = (j.submit_ns as f64 * self.arrival_scale).round() as u64;
            j.compute_ns = ((j.compute_ns as f64 * self.runtime_scale).round() as u64).max(1);
            j.est_runtime_ns =
                ((j.est_runtime_ns as f64 * self.runtime_scale).round() as u64).max(1);
            if let Some(cap) = self.fit_nodes {
                j.nodes = j.nodes.min(cap);
            }
        }
        if self.tile > 1 && !jobs.is_empty() {
            let base: Vec<BatchJob> = jobs.clone();
            let span = base.iter().map(|j| j.submit_ns).max().expect("non-empty");
            let id_stride = base.iter().map(|j| j.id).max().expect("non-empty") + 1;
            // Copies arrive back to back; a +1 ns gap keeps copy
            // boundaries distinct even for a trace whose arrivals are
            // all at offset 0.
            let shift = span + 1;
            for c in 1..self.tile {
                for j in &base {
                    let mut j = j.clone();
                    j.submit_ns += u64::from(c) * shift;
                    j.id += c * id_stride;
                    jobs.push(j);
                }
            }
        }
        BatchTrace { jobs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = "\
; Version: 2.2
; MaxNodes: 8
; MaxProcs: 16
; UnixStartTime: 1000000000
1 0 5 3600 4 -1 -1 4 7200 -1 1 3 1 0 2 0 -1 -1
2 10 -1 60 -1 -1 -1 2 -1 -1 1 4 1 2 1 0 -1 -1
3 5 0 1800 16 1700 -1 16 1800 -1 1 3 1 1 0 0 -1 -1
4 20 0 -1 -1 -1 -1 -1 -1 -1 0 5 1 1 2 0 -1 -1
";

    #[test]
    fn parses_header_fields_and_missing_values() {
        let t = SwfTrace::from_text(MINI).unwrap();
        assert_eq!(t.jobs.len(), 4);
        assert_eq!(t.max_nodes(), Some(8));
        assert_eq!(t.max_procs(), Some(16));
        assert_eq!(t.directive("UnixStartTime"), Some(1_000_000_000));
        assert_eq!(t.directive("NoSuchKey"), None);
        // -1 semantics: job 2 has no allocated procs, falls back to
        // the request; job 4 has neither.
        assert_eq!(t.jobs[1].procs, -1);
        assert_eq!(t.jobs[1].effective_procs(), Some(2));
        assert_eq!(t.jobs[3].effective_procs(), None);
        assert_eq!(t.jobs[1].effective_req_time(), Some(60));
    }

    #[test]
    fn round_trips_exactly() {
        let t = SwfTrace::from_text(MINI).unwrap();
        let text = t.to_text();
        let back = SwfTrace::from_text(&text).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn rejects_garbage_lines() {
        assert!(SwfTrace::from_text("1 2 3\n").is_err(), "too few fields");
        assert!(
            SwfTrace::from_text("1 0 0 60 4 -1 -1 4 60 -1 1 1 1 1 0 0 -1 -1 99\n").is_err(),
            "too many fields"
        );
        assert!(
            SwfTrace::from_text("one 0 0 60 4 -1 -1 4 60 -1 1 1 1 1 0 0 -1 -1\n").is_err(),
            "non-numeric field"
        );
        assert!(
            SwfTrace::from_text("-7 0 0 60 4 -1 -1 4 60 -1 1 1 1 1 0 0 -1 -1\n").is_err(),
            "negative job number"
        );
        let err = SwfTrace::from_text("; ok\nbogus line here\n").unwrap_err();
        assert!(err.contains("line 2"), "error names the line: {err}");
    }

    #[test]
    fn normalization_sorts_and_rebases() {
        let t = SwfTrace::from_text(MINI).unwrap();
        // MINI is deliberately non-monotone: submits 0, 10, 5, 20.
        assert!(t.jobs.windows(2).any(|w| w[0].submit > w[1].submit));
        let n = t.normalized();
        let submits: Vec<i64> = n.jobs.iter().map(|j| j.submit).collect();
        assert_eq!(submits, vec![0, 5, 10, 20]);
        let ids: Vec<u32> = n.jobs.iter().map(|j| j.job_id).collect();
        assert_eq!(ids, vec![1, 3, 2, 4]);
        // Rebase: shift everything by +100 and the normal form is
        // unchanged.
        let mut shifted = t.clone();
        for j in &mut shifted.jobs {
            j.submit += 100;
        }
        assert_eq!(shifted.normalized().jobs, n.jobs);
    }

    #[test]
    fn to_batch_maps_and_drops() {
        let t = SwfTrace::from_text(MINI).unwrap();
        let map = SwfMap::for_cluster(4);
        let (batch, dropped) = t.to_batch(&map);
        assert_eq!(dropped, 1, "job 4 has no runtime and no procs");
        assert_eq!(batch.jobs.len(), 3);
        // Normalized order: job 1 (submit 0), job 3 (5), job 2 (10).
        assert_eq!(batch.jobs[0].id, 1);
        assert_eq!(batch.jobs[0].user, 3);
        assert_eq!(batch.jobs[0].class, 2);
        assert_eq!(batch.jobs[0].nodes, 2, "4 procs at 2 ranks/node");
        let wide = &batch.jobs[1];
        assert_eq!(wide.id, 3);
        assert_eq!(wide.nodes, 4, "16 procs clamp to the 4-node cluster");
        // Time compression: 3600 s at 10_000 ns/s over 2 iters.
        assert_eq!(batch.jobs[0].compute_ns, 18_000_000);
        assert_eq!(batch.jobs[2].submit_ns, 100_000);
        // Bracket estimates dominate the scaled request here.
        assert!(batch.jobs[0].est_runtime_ns >= 72_000_000);
        // Honest estimates use the raw scaled request.
        let (honest, _) = t.to_batch(&SwfMap::for_cluster(4).honest());
        assert_eq!(honest.jobs[0].est_runtime_ns, 72_000_000);
        assert!(honest.jobs[0].est_runtime_ns < batch.jobs[0].est_runtime_ns);
    }

    #[test]
    fn transform_truncates_shapes_and_fits() {
        let t = SwfTrace::from_text(MINI).unwrap();
        let (batch, _) = t.to_batch(&SwfMap::for_cluster(8));
        let out = TraceTransform::new()
            .take(2)
            .arrival_scale(0.5)
            .runtime_scale(2.0)
            .fit(2)
            .apply(&batch);
        assert_eq!(out.jobs.len(), 2);
        assert_eq!(out.jobs[1].submit_ns, batch.jobs[1].submit_ns / 2);
        assert_eq!(out.jobs[0].compute_ns, batch.jobs[0].compute_ns * 2);
        assert!(out.jobs.iter().all(|j| j.nodes <= 2));
        // Identity transform is exact.
        assert_eq!(TraceTransform::new().apply(&batch), batch);
        // Deterministic: same inputs, same output.
        let again = TraceTransform::new()
            .take(2)
            .arrival_scale(0.5)
            .runtime_scale(2.0)
            .fit(2)
            .apply(&batch);
        assert_eq!(out, again);
    }

    #[test]
    fn transform_tile_replicates_arrivals_and_renumbers() {
        let t = SwfTrace::from_text(MINI).unwrap();
        let (batch, _) = t.to_batch(&SwfMap::for_cluster(8));
        let n = batch.jobs.len();
        let out = TraceTransform::new().tile(3).apply(&batch);
        assert_eq!(out.jobs.len(), 3 * n);
        // Ids unique across copies.
        let mut ids: Vec<u32> = out.jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3 * n, "tiled ids stay unique");
        // Copy c's arrivals are copy 0's, shifted by a constant.
        let span = batch.jobs.iter().map(|j| j.submit_ns).max().unwrap() + 1;
        for c in 0..3u64 {
            for (i, j) in batch.jobs.iter().enumerate() {
                let tiled = &out.jobs[c as usize * n + i];
                assert_eq!(tiled.submit_ns, j.submit_ns + c * span);
                assert_eq!(tiled.nodes, j.nodes);
                assert_eq!(tiled.compute_ns, j.compute_ns);
            }
        }
        // tile(1) is the identity.
        assert_eq!(TraceTransform::new().tile(1).apply(&batch), batch);
    }
}
