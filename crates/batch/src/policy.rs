//! Pluggable allocation policies for the batch scheduler.
//!
//! A policy sees the queue (in arrival order) and a [`ClusterView`] —
//! per-node occupancy plus the estimated end times of running jobs —
//! and picks the next job to launch together with its node placement.
//! The engine calls [`AllocPolicy::select`] repeatedly at every decision
//! point until it returns `None`, so a policy that can start several
//! jobs in one window simply yields them one at a time.
//!
//! The policy zoo (the scheduler-taxonomy axis of the related work):
//!
//! * [`Fcfs`] — strict arrival order; the head job blocks everything
//!   behind it until enough free nodes exist.
//! * [`EasyBackfill`] — EASY backfilling: the head job gets a
//!   *reservation* (a concrete node set and a shadow time computed from
//!   the running jobs' runtime estimates) and a younger job may jump the
//!   queue only if it cannot delay that reservation — either it finishes
//!   before the shadow time or it runs entirely on nodes the head will
//!   not need. Every backfill decision is logged ([`BackfillDecision`])
//!   so tests can audit the promise.
//! * [`ConservativeBackfill`] — *every* queued job (up to a reservation
//!   depth) holds a reservation, not just the head; a job starts out of
//!   order only into a genuine hole in that schedule, so no admission
//!   ever delays an earlier-queued job's promised start. Each admission
//!   is audited ([`ReservationDecision`]).
//! * [`MultiQueue`] — priority classes with aging: dispatch from the
//!   best effective class (job class minus levels earned by waiting),
//!   FCFS within a class, so low-priority jobs cannot starve.
//! * [`FairShare`] — per-user decayed usage accounting and
//!   share-ordered dispatch: among jobs that fit, the user with the
//!   lowest usage-to-share ratio goes first (audited per dispatch via
//!   [`FairShareDispatch`]).
//! * [`Oversubscribed`] — the fractional/co-scheduling contrast: up to
//!   two jobs share a node (occupancy limit 2), allocation is FCFS onto
//!   the least-occupied nodes. This deliberately breaks the paper's
//!   dedicated-node assumption to measure what OS-level scheduling does
//!   when the batch level stops protecting it.
//! * [`Dfrs`] — dynamic fractional resource scheduling: oversubscribed
//!   FCFS packing by remaining fraction plus *periodic reallocation* of
//!   per-job fractional CPU shares (audited via [`DfrsDecision`]), the
//!   batch-vs-fractional comparison of Casanova/Stillwell/Vivien. The
//!   OS level realises the shares through gang rotation
//!   (`KernelConfig::gang_epoch`).
//!
//! Audit trails are bounded: policies log into a fixed-capacity
//! [`AuditLog`] ring (newest kept), with running totals and violation
//! counters that see *every* decision, so thousand-job SWF runs don't
//! grow memory linearly with admissions.

use hpl_sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// A queued job as the policy sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedJob {
    /// Trace id.
    pub id: u32,
    /// Nodes requested.
    pub nodes: u32,
    /// Submission time (batch epoch + trace offset).
    pub submitted: SimTime,
    /// User runtime estimate.
    pub est_runtime: SimDuration,
    /// Submitting user (fair-share key).
    pub user: u32,
    /// Priority class (0 = highest; multi-queue key).
    pub class: u32,
}

/// Default capacity of a policy's bounded audit ring.
pub const AUDIT_LOG_CAP: usize = 4096;

/// A bounded decision log: keeps the newest `cap` entries, counts them
/// all. Policies push every decision through [`AuditLog::push`], which
/// returns the entry back so violation counters can be updated without
/// borrowing the ring.
#[derive(Debug, Clone)]
pub struct AuditLog<T> {
    recent: VecDeque<T>,
    cap: usize,
    total: u64,
}

impl<T> AuditLog<T> {
    /// An empty log keeping at most `cap` recent entries.
    pub fn with_cap(cap: usize) -> Self {
        AuditLog {
            recent: VecDeque::new(),
            cap: cap.max(1),
            total: 0,
        }
    }

    fn push(&mut self, entry: T) {
        if self.recent.len() == self.cap {
            self.recent.pop_front();
        }
        self.recent.push_back(entry);
        self.total += 1;
    }

    /// The retained (newest) entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.recent.iter()
    }

    /// Entries ever pushed, including ones the ring has since dropped.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Entries the ring has dropped (`total - retained`).
    pub fn dropped(&self) -> u64 {
        self.total - self.recent.len() as u64
    }
}

impl<T> Default for AuditLog<T> {
    fn default() -> Self {
        Self::with_cap(AUDIT_LOG_CAP)
    }
}

/// A running job as the policy sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunningJob {
    /// Trace id.
    pub id: u32,
    /// Cluster nodes it occupies.
    pub placement: Vec<usize>,
    /// Estimated end time (start + user estimate).
    pub est_end: SimTime,
}

/// Snapshot of cluster state at a decision point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterView {
    /// Decision time.
    pub now: SimTime,
    /// Jobs currently occupying each node, indexed by cluster node.
    pub occupancy: Vec<u32>,
    /// Jobs launched and not yet completed.
    pub running: Vec<RunningJob>,
    /// Nodes that are crashed or drained, indexed by cluster node.
    /// Policies never place work on these.
    pub down: Vec<bool>,
}

impl ClusterView {
    /// Node indices with occupancy strictly below `limit`, ascending.
    /// Down or drained nodes are never eligible.
    fn nodes_below(&self, limit: u32) -> Vec<usize> {
        (0..self.occupancy.len())
            .filter(|&n| self.occupancy[n] < limit && !self.down[n])
            .collect()
    }
}

/// A policy decision: launch `queue_idx` on `placement`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Index into the queue slice passed to `select`.
    pub queue_idx: usize,
    /// Cluster nodes to run it on (one job node per entry).
    pub placement: Vec<usize>,
}

/// A cluster-level allocation policy.
pub trait AllocPolicy {
    /// Short name for reports and bench output.
    fn name(&self) -> &'static str;

    /// Maximum concurrent jobs per node this policy may create (1 =
    /// dedicated nodes). The engine cross-checks the cluster against
    /// this bound at every decision point.
    fn occupancy_limit(&self) -> u32 {
        1
    }

    /// Pick the next job to launch, or `None` when nothing (more) can
    /// start right now. `queue` is in arrival order and non-empty
    /// entries are never reordered by the engine.
    fn select(&mut self, queue: &[QueuedJob], view: &ClusterView) -> Option<Allocation>;

    /// Recompute per-job fractional CPU shares, if this policy manages
    /// any. Called once per decision point, after allocation; every
    /// returned `(node, job, share_milli)` triple is published by the
    /// engine as a `SchedEvent::JobShare` so observers and the torture
    /// oracle can audit conservation. Slot-based policies (everything
    /// except [`Dfrs`]) keep the default empty answer, which publishes
    /// nothing and leaves their runs untouched bit for bit.
    fn share_update(&mut self, view: &ClusterView) -> Vec<(usize, u32, u32)> {
        let _ = view;
        Vec::new()
    }
}

/// First-come-first-served on dedicated nodes.
#[derive(Debug, Default)]
pub struct Fcfs;

impl AllocPolicy for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn select(&mut self, queue: &[QueuedJob], view: &ClusterView) -> Option<Allocation> {
        let head = queue.first()?;
        let free = view.nodes_below(1);
        if free.len() < head.nodes as usize {
            return None;
        }
        Some(Allocation {
            queue_idx: 0,
            placement: free[..head.nodes as usize].to_vec(),
        })
    }
}

/// One audited backfill decision (see [`EasyBackfill::decisions`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackfillDecision {
    /// The job that jumped the queue.
    pub job: u32,
    /// The head job whose reservation it had to respect.
    pub head: u32,
    /// The shadow time promised to the head at this decision: the head
    /// can start no later than this, assuming estimates hold.
    pub shadow: SimTime,
    /// The backfilled job's estimated end (`now + est_runtime`).
    pub est_end: SimTime,
    /// Nodes reserved for the head at this decision.
    pub reserved: Vec<usize>,
    /// Nodes the backfilled job was placed on.
    pub placement: Vec<usize>,
}

impl BackfillDecision {
    /// The EASY invariant for this decision: the backfilled job either
    /// ends (by estimate) before the head's shadow time, or it runs
    /// entirely on nodes outside the head's reservation.
    pub fn respects_reservation(&self) -> bool {
        self.est_end <= self.shadow || self.placement.iter().all(|n| !self.reserved.contains(n))
    }
}

/// EASY backfilling on dedicated nodes.
#[derive(Debug, Default)]
pub struct EasyBackfill {
    decisions: AuditLog<BackfillDecision>,
    violations: u64,
}

impl EasyBackfill {
    /// Fresh policy with an empty audit log.
    pub fn new() -> Self {
        Self::default()
    }

    /// The retained backfill decisions, oldest first — the audit trail
    /// for the reservation-safety property tests. Bounded to the newest
    /// [`AUDIT_LOG_CAP`] entries; [`Self::decisions_total`] and
    /// [`Self::reservation_violations`] see every decision ever taken.
    pub fn decisions(&self) -> impl Iterator<Item = &BackfillDecision> {
        self.decisions.iter()
    }

    /// Backfill decisions ever taken (including ring-dropped ones).
    pub fn decisions_total(&self) -> u64 {
        self.decisions.total()
    }

    /// Decisions that violated [`BackfillDecision::respects_reservation`]
    /// — counted at decision time over the full run, so the invariant
    /// stays checkable after the ring wraps. Must be 0.
    pub fn reservation_violations(&self) -> u64 {
        self.violations
    }

    /// The head job's reservation given `view`: the concrete node set
    /// the head will run on and the shadow time at which the last of
    /// those nodes frees up (estimates permitting). Currently-free nodes
    /// are taken first, then nodes of running jobs in estimated-end
    /// order. `None` if the head fits right now (no reservation needed).
    fn reservation(head: &QueuedJob, view: &ClusterView) -> Option<(Vec<usize>, SimTime)> {
        let free = view.nodes_below(1);
        let need = head.nodes as usize;
        if free.len() >= need {
            return None;
        }
        let mut reserved = free;
        let mut running: Vec<&RunningJob> = view.running.iter().collect();
        running.sort_by_key(|r| (r.est_end, r.id));
        let mut shadow = view.now;
        for r in &running {
            for &n in &r.placement {
                if reserved.len() == need {
                    break;
                }
                if !reserved.contains(&n) {
                    reserved.push(n);
                    shadow = r.est_end;
                }
            }
            if reserved.len() == need {
                break;
            }
        }
        // A job wider than the cluster can never be satisfied; the
        // engine rejects those at submit time, so with every node up the
        // walk always completes the set. Crashed/drained nodes can shrink
        // the pool below the head's width until a restart lands — then
        // the head's start time is unknowable, so the shadow moves to the
        // far future and backfill can proceed without breaking a promise.
        if reserved.len() < need {
            shadow = SimTime::from_nanos(u64::MAX);
        }
        reserved.sort_unstable();
        Some((reserved, shadow))
    }
}

impl AllocPolicy for EasyBackfill {
    fn name(&self) -> &'static str {
        "easy"
    }

    fn select(&mut self, queue: &[QueuedJob], view: &ClusterView) -> Option<Allocation> {
        let head = queue.first()?;
        let free = view.nodes_below(1);
        let Some((reserved, shadow)) = Self::reservation(head, view) else {
            // Head fits now: start it (this is also the backfill of
            // width-compatible heads — FCFS order preserved).
            return Some(Allocation {
                queue_idx: 0,
                placement: free[..head.nodes as usize].to_vec(),
            });
        };
        // Head blocked: try to backfill the first younger job that
        // cannot delay the reservation.
        for (qi, cand) in queue.iter().enumerate().skip(1) {
            let want = cand.nodes as usize;
            if want > free.len() {
                continue;
            }
            let est_end = view.now + cand.est_runtime;
            let placement: Vec<usize> = if est_end <= shadow {
                // Finishes before the head needs its nodes: any free
                // nodes do, reserved ones included.
                free[..want].to_vec()
            } else {
                // Outlives the shadow window: only nodes the head will
                // never touch are safe.
                let outside: Vec<usize> = free
                    .iter()
                    .copied()
                    .filter(|n| !reserved.contains(n))
                    .collect();
                if outside.len() < want {
                    continue;
                }
                outside[..want].to_vec()
            };
            let d = BackfillDecision {
                job: cand.id,
                head: head.id,
                shadow,
                est_end,
                reserved: reserved.clone(),
                placement: placement.clone(),
            };
            if !d.respects_reservation() {
                self.violations += 1;
            }
            self.decisions.push(d);
            return Some(Allocation {
                queue_idx: qi,
                placement,
            });
        }
        None
    }
}

/// One audited conservative-backfill admission (see
/// [`ConservativeBackfill::decisions`]): the admitted job plus every
/// earlier-queued job's reservation as it stood at that moment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReservationDecision {
    /// The admitted job.
    pub job: u32,
    /// Nodes it was placed on.
    pub placement: Vec<usize>,
    /// Its estimated end (`now + est_runtime`).
    pub est_end: SimTime,
    /// Earlier-queued jobs' reservations at admission: `(job id,
    /// promised start, reserved nodes)`. Jobs the scheduler could not
    /// reserve for (cluster shrunk below their width by faults) are
    /// absent — they hold no promise to delay.
    pub earlier: Vec<(u32, SimTime, Vec<usize>)>,
}

impl ReservationDecision {
    /// The conservative invariant: the admitted job delays no earlier
    /// reservation — for every earlier job it either ends (by estimate)
    /// before that job's promised start, or it touches none of that
    /// job's reserved nodes.
    pub fn respects_reservations(&self) -> bool {
        self.earlier.iter().all(|(_, start, nodes)| {
            self.est_end <= *start || self.placement.iter().all(|n| !nodes.contains(n))
        })
    }
}

/// A reservation in the conservative schedule: when and where a queued
/// job is promised to run.
#[derive(Debug, Clone)]
struct PlannedStart {
    start: SimTime,
    nodes: Vec<usize>,
}

/// Conservative backfilling on dedicated nodes: every queued job (up to
/// [`Self::with_depth`]) holds a concrete reservation — a node set and
/// a promised start computed from running jobs' estimates and all
/// earlier reservations — and a job is admitted out of arrival order
/// only when its own reservation starts *now*, i.e. it fits into a hole
/// that delays nobody ahead of it. The contrast with EASY is the
/// classic one: EASY protects only the head job's start time,
/// conservative protects every queued job's.
///
/// Reservation planning is O(queue × nodes × profile events) and is
/// memoized: the plan is recomputed only when the queue, the running
/// set, occupancy or node health changes, or when the clock crosses a
/// running job's estimated end (which can reorder the availability
/// profile).
#[derive(Debug)]
pub struct ConservativeBackfill {
    depth: usize,
    decisions: AuditLog<ReservationDecision>,
    violations: u64,
    /// Memo: fingerprint of the last planned view, the clock horizon it
    /// stays valid for, and whether the plan admitted nothing.
    memo: Option<(u64, SimTime)>,
}

impl Default for ConservativeBackfill {
    fn default() -> Self {
        ConservativeBackfill {
            depth: 32,
            decisions: AuditLog::default(),
            violations: 0,
            memo: None,
        }
    }
}

impl ConservativeBackfill {
    /// Fresh policy with the default reservation depth (32).
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap how many queued jobs hold reservations (and are candidates
    /// for admission) per decision. Real conservative schedulers cap
    /// this too; jobs beyond the horizon simply wait their turn.
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth.max(1);
        self
    }

    /// The retained admission audits, oldest first (bounded ring; see
    /// [`Self::admissions_total`] / [`Self::reservation_violations`]).
    pub fn decisions(&self) -> impl Iterator<Item = &ReservationDecision> {
        self.decisions.iter()
    }

    /// Admissions ever audited (including ring-dropped ones).
    pub fn admissions_total(&self) -> u64 {
        self.decisions.total()
    }

    /// Admissions that violated
    /// [`ReservationDecision::respects_reservations`], counted at
    /// admission over the full run. Must be 0.
    pub fn reservation_violations(&self) -> u64 {
        self.violations
    }

    /// Plan reservations for the first `depth` queued jobs, in order.
    /// Returns each job's promised `(start, nodes)`; `None` entries are
    /// jobs the current up-node pool cannot ever satisfy (their promise
    /// is vacuous until a restart widens the pool).
    fn plan(&self, queue: &[QueuedJob], view: &ClusterView) -> Vec<Option<PlannedStart>> {
        let now = view.now;
        let n_nodes = view.occupancy.len();
        let eps = SimDuration::from_nanos(1);
        // Availability: node n is busy until `until[n]`. An occupied
        // node whose job overran its estimate is busy until "just after
        // now" — unknowable, but certainly not free this instant.
        let until: Vec<SimTime> = (0..n_nodes)
            .map(|n| {
                if view.down[n] {
                    SimTime::MAX
                } else if view.occupancy[n] > 0 {
                    let est = view
                        .running
                        .iter()
                        .filter(|r| r.placement.contains(&n))
                        .map(|r| r.est_end)
                        .max()
                        .unwrap_or(now);
                    est.max(now + eps)
                } else {
                    now
                }
            })
            .collect();
        // Future reserved intervals per node, appended as we plan.
        let mut reserved: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); n_nodes];
        let mut plans = Vec::with_capacity(queue.len().min(self.depth));
        for q in queue.iter().take(self.depth) {
            let need = q.nodes as usize;
            let dur = q.est_runtime.max(eps);
            // Candidate start times: now, every busy-until, every
            // reservation end. The earliest feasible one wins.
            let mut cands: Vec<SimTime> = Vec::with_capacity(n_nodes + 8);
            cands.push(now);
            for n in 0..n_nodes {
                if until[n] > now && until[n] < SimTime::MAX {
                    cands.push(until[n]);
                }
                for &(_, e) in &reserved[n] {
                    cands.push(e);
                }
            }
            cands.sort_unstable();
            cands.dedup();
            let mut plan: Option<PlannedStart> = None;
            for &t in &cands {
                let end = t + dur;
                let free: Vec<usize> = (0..n_nodes)
                    .filter(|&n| {
                        until[n] <= t && reserved[n].iter().all(|&(s, e)| e <= t || s >= end)
                    })
                    .take(need)
                    .collect();
                if free.len() == need {
                    plan = Some(PlannedStart {
                        start: t,
                        nodes: free,
                    });
                    break;
                }
            }
            if let Some(p) = &plan {
                let end = p.start + dur;
                for &n in &p.nodes {
                    reserved[n].push((p.start, end));
                }
            }
            plans.push(plan);
        }
        plans
    }

    /// Fingerprint of everything the plan depends on except the bare
    /// clock (FNV-1a). Clock crossings of running estimates are handled
    /// by the memo horizon instead.
    fn view_fingerprint(&self, queue: &[QueuedJob], view: &ClusterView) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(queue.len() as u64);
        for q in queue.iter().take(self.depth) {
            mix(q.id as u64);
            mix(q.nodes as u64);
            mix(q.est_runtime.as_nanos());
        }
        for r in &view.running {
            mix(r.id as u64);
            mix(r.est_end.as_nanos());
            for &n in &r.placement {
                mix(n as u64);
            }
        }
        for (n, &occ) in view.occupancy.iter().enumerate() {
            mix(((occ as u64) << 1) | view.down[n] as u64);
        }
        h
    }
}

impl AllocPolicy for ConservativeBackfill {
    fn name(&self) -> &'static str {
        "conservative"
    }

    fn select(&mut self, queue: &[QueuedJob], view: &ClusterView) -> Option<Allocation> {
        if queue.is_empty() {
            return None;
        }
        let fp = self.view_fingerprint(queue, view);
        if let Some((memo_fp, horizon)) = self.memo {
            if memo_fp == fp && view.now < horizon {
                // Same queue/running/occupancy and no estimate crossed:
                // the last plan admitted nothing and still admits
                // nothing (admissibility can only decay as time passes
                // within a horizon).
                return None;
            }
        }
        let plans = self.plan(queue, view);
        for (qi, plan) in plans.iter().enumerate() {
            let Some(p) = plan else { continue };
            if p.start > view.now {
                continue;
            }
            // Admission: this job's reservation starts now. Audit it
            // against every earlier reservation.
            let d = ReservationDecision {
                job: queue[qi].id,
                placement: p.nodes.clone(),
                est_end: view.now + queue[qi].est_runtime,
                earlier: plans[..qi]
                    .iter()
                    .zip(queue)
                    .filter_map(|(e, q)| e.as_ref().map(|e| (q.id, e.start, e.nodes.clone())))
                    .collect(),
            };
            if !d.respects_reservations() {
                self.violations += 1;
            }
            self.decisions.push(d);
            self.memo = None;
            return Some(Allocation {
                queue_idx: qi,
                placement: p.nodes.clone(),
            });
        }
        // Nothing admissible: remember that until the view changes or
        // the clock crosses the next running estimate.
        let horizon = view
            .running
            .iter()
            .map(|r| r.est_end)
            .filter(|&e| e > view.now)
            .min()
            .unwrap_or(SimTime::MAX);
        self.memo = Some((fp, horizon));
        None
    }
}

/// Priority classes with aging on dedicated nodes. A job's *effective*
/// class is its trace class (clamped to `levels`) minus one level per
/// `age_step` spent waiting, floored at 0 — so every job eventually
/// reaches the top class and FCFS order within it, which is the
/// classic starvation guard. Dispatch is head-of-best-class blocking
/// (no backfill): the highest-priority oldest job waits for its nodes.
#[derive(Debug)]
pub struct MultiQueue {
    levels: u32,
    age_step: SimDuration,
    dispatches: u64,
}

impl Default for MultiQueue {
    fn default() -> Self {
        MultiQueue {
            levels: 3,
            age_step: SimDuration::from_millis(20),
            dispatches: 0,
        }
    }
}

impl MultiQueue {
    /// `levels` priority classes (trace classes clamp into
    /// `0..levels`), one promotion per `age_step` of queue wait.
    pub fn new(levels: u32, age_step: SimDuration) -> Self {
        assert!(levels >= 1, "need at least one class");
        assert!(age_step > SimDuration::ZERO, "aging needs a step");
        MultiQueue {
            levels,
            age_step,
            dispatches: 0,
        }
    }

    /// Jobs dispatched so far.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// The effective class of `q` at `now`: clamped class minus earned
    /// promotions.
    pub fn effective_class(&self, q: &QueuedJob, now: SimTime) -> u32 {
        let class = q.class.min(self.levels - 1);
        let promoted = (now.since(q.submitted).as_nanos() / self.age_step.as_nanos()) as u32;
        class.saturating_sub(promoted)
    }
}

impl AllocPolicy for MultiQueue {
    fn name(&self) -> &'static str {
        "multiq"
    }

    fn select(&mut self, queue: &[QueuedJob], view: &ClusterView) -> Option<Allocation> {
        let head = queue
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| (self.effective_class(q, view.now), q.submitted, q.id))?;
        let free = view.nodes_below(1);
        if free.len() < head.1.nodes as usize {
            return None;
        }
        self.dispatches += 1;
        Some(Allocation {
            queue_idx: head.0,
            placement: free[..head.1.nodes as usize].to_vec(),
        })
    }
}

/// One audited fair-share dispatch (see [`FairShare::decisions`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FairShareDispatch {
    /// The dispatched job.
    pub job: u32,
    /// Its user.
    pub user: u32,
    /// The user's usage-to-share ratio at dispatch (decayed
    /// node-seconds over share weight).
    pub ratio: f64,
    /// The minimum ratio over all queued jobs that *fit* the free
    /// nodes at this decision (the dispatched job included).
    pub min_fittable_ratio: f64,
}

impl FairShareDispatch {
    /// The fair-share invariant: the dispatched job's user had the
    /// lowest usage/share ratio among all queued jobs that could have
    /// started instead (ties broken by arrival order).
    pub fn respects_shares(&self) -> bool {
        self.ratio <= self.min_fittable_ratio + 1e-9
    }
}

/// Fair-share dispatch on dedicated nodes: per-user usage accumulates
/// at launch (nodes × estimated runtime), decays exponentially with a
/// configurable half-life, and dispatch order among jobs that fit the
/// free nodes is lowest usage-to-share ratio first (then arrival
/// order). Work-conserving: if the poorest user's job doesn't fit, the
/// next-poorest fittable job runs — the skip is what the audit records.
#[derive(Debug)]
pub struct FairShare {
    half_life: SimDuration,
    shares: BTreeMap<u32, f64>,
    usage: BTreeMap<u32, f64>,
    last_decay: Option<SimTime>,
    decisions: AuditLog<FairShareDispatch>,
    violations: u64,
}

impl Default for FairShare {
    fn default() -> Self {
        FairShare {
            half_life: SimDuration::from_millis(50),
            shares: BTreeMap::new(),
            usage: BTreeMap::new(),
            last_decay: None,
            decisions: AuditLog::default(),
            violations: 0,
        }
    }
}

impl FairShare {
    /// Fresh policy: equal shares, 50 ms usage half-life (virtual
    /// milliseconds — the traces here run jobs in the ms range).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the usage half-life.
    pub fn with_half_life(mut self, half_life: SimDuration) -> Self {
        assert!(half_life > SimDuration::ZERO, "half-life must be positive");
        self.half_life = half_life;
        self
    }

    /// Give `user` a share weight (default 1.0). Dispatch order uses
    /// usage ÷ share, so doubling a share halves the cost of usage.
    pub fn with_share(mut self, user: u32, weight: f64) -> Self {
        assert!(weight > 0.0, "shares must be positive");
        self.shares.insert(user, weight);
        self
    }

    /// The user's current decayed usage, node-seconds.
    pub fn usage(&self, user: u32) -> f64 {
        self.usage.get(&user).copied().unwrap_or(0.0)
    }

    /// The retained dispatch audits, oldest first (bounded ring; see
    /// [`Self::dispatches_total`] / [`Self::share_violations`]).
    pub fn decisions(&self) -> impl Iterator<Item = &FairShareDispatch> {
        self.decisions.iter()
    }

    /// Dispatches ever audited (including ring-dropped ones).
    pub fn dispatches_total(&self) -> u64 {
        self.decisions.total()
    }

    /// Dispatches that violated [`FairShareDispatch::respects_shares`],
    /// counted over the full run. Must be 0.
    pub fn share_violations(&self) -> u64 {
        self.violations
    }

    fn share(&self, user: u32) -> f64 {
        self.shares.get(&user).copied().unwrap_or(1.0)
    }

    fn ratio(&self, user: u32) -> f64 {
        self.usage(user) / self.share(user)
    }

    fn decay_to(&mut self, now: SimTime) {
        let Some(last) = self.last_decay else {
            self.last_decay = Some(now);
            return;
        };
        if now <= last {
            return;
        }
        let dt = now.since(last).as_secs_f64();
        let factor = 0.5_f64.powf(dt / self.half_life.as_secs_f64());
        for u in self.usage.values_mut() {
            *u *= factor;
        }
        self.last_decay = Some(now);
    }
}

impl AllocPolicy for FairShare {
    fn name(&self) -> &'static str {
        "fairshare"
    }

    fn select(&mut self, queue: &[QueuedJob], view: &ClusterView) -> Option<Allocation> {
        if queue.is_empty() {
            return None;
        }
        self.decay_to(view.now);
        let free = view.nodes_below(1);
        // Among fittable jobs, lowest usage/share ratio first; ties by
        // arrival then id so the order is total and deterministic.
        let pick = queue
            .iter()
            .enumerate()
            .filter(|(_, q)| q.nodes as usize <= free.len())
            .min_by(|(_, a), (_, b)| {
                self.ratio(a.user)
                    .total_cmp(&self.ratio(b.user))
                    .then(a.submitted.cmp(&b.submitted))
                    .then(a.id.cmp(&b.id))
            })?;
        let (qi, q) = pick;
        let min_fittable_ratio = queue
            .iter()
            .filter(|c| c.nodes as usize <= free.len())
            .map(|c| self.ratio(c.user))
            .fold(f64::INFINITY, f64::min);
        let d = FairShareDispatch {
            job: q.id,
            user: q.user,
            ratio: self.ratio(q.user),
            min_fittable_ratio,
        };
        if !d.respects_shares() {
            self.violations += 1;
        }
        self.decisions.push(d);
        *self.usage.entry(q.user).or_insert(0.0) += q.nodes as f64 * q.est_runtime.as_secs_f64();
        Some(Allocation {
            queue_idx: qi,
            placement: free[..q.nodes as usize].to_vec(),
        })
    }
}

/// FCFS with two jobs per node (fractional/oversubscribed allocation).
#[derive(Debug, Default)]
pub struct Oversubscribed;

impl AllocPolicy for Oversubscribed {
    fn name(&self) -> &'static str {
        "oversub"
    }

    fn occupancy_limit(&self) -> u32 {
        2
    }

    fn select(&mut self, queue: &[QueuedJob], view: &ClusterView) -> Option<Allocation> {
        let head = queue.first()?;
        let mut open = view.nodes_below(2);
        if open.len() < head.nodes as usize {
            return None;
        }
        // Least-occupied first (spread before stacking), ties by index.
        open.sort_by_key(|&n| (view.occupancy[n], n));
        let mut placement = open[..head.nodes as usize].to_vec();
        placement.sort_unstable();
        Some(Allocation {
            queue_idx: 0,
            placement,
        })
    }
}

/// One audited DFRS reallocation (see [`Dfrs::decisions`]).
///
/// At every reallocation epoch the policy recomputes each running job's
/// fractional CPU share on every node it occupies, in milli-units
/// (1000 = one full node). The record keeps the complete share vector
/// so property tests and the torture runner can check conservation
/// after the fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfrsDecision {
    /// Decision time (the epoch boundary that triggered it).
    pub at: SimTime,
    /// Reallocation epoch index (`now / period`).
    pub epoch: u64,
    /// `(node, job, share_milli)` triples, ascending by node then job
    /// id.
    pub shares: Vec<(usize, u32, u32)>,
}

impl DfrsDecision {
    /// The DFRS conservation invariant for this decision: on every node
    /// the shares handed out sum to at most 1000 milli — no node ever
    /// promises more than one CPU's worth of fractional capacity.
    pub fn respects_shares(&self) -> bool {
        let mut per_node: BTreeMap<usize, u32> = BTreeMap::new();
        for &(node, _, share) in &self.shares {
            *per_node.entry(node).or_insert(0) += share;
        }
        per_node.values().all(|&sum| sum <= 1000)
    }
}

/// Dynamic fractional resource scheduling (DFRS) — the fractional side
/// of the Casanova/Stillwell/Vivien batch-vs-fractional comparison.
///
/// Allocation is FCFS with up to two jobs per node (occupancy limit 2,
/// like [`Oversubscribed`]), but candidate nodes are packed by
/// *remaining fraction*: the head job goes to the nodes with the most
/// unpromised fractional capacity, ties broken by node index. On top of
/// allocation the policy *reallocates* at a fixed period: each epoch
/// every node's capacity is split evenly among its co-resident jobs
/// (the yield-maximising split for symmetric CPU-bound jobs), with any
/// remainder milli rotated by `(seed, epoch)` so no job is
/// systematically favoured. Reallocations are pure functions of the
/// cluster view ([`Dfrs::shares_for`]), audited ([`DfrsDecision`]) and
/// handed to the engine through [`AllocPolicy::share_update`]; the OS
/// level realises the shares via gang rotation
/// (`KernelConfig::gang_epoch`).
#[derive(Debug)]
pub struct Dfrs {
    period: SimDuration,
    seed: u64,
    /// Per-job weights for uneven splits (see [`Self::with_job_weight`]);
    /// jobs without an entry weigh 1.
    weights: BTreeMap<u32, u32>,
    last_epoch: Option<u64>,
    decisions: AuditLog<DfrsDecision>,
    violations: u64,
}

impl Dfrs {
    /// Fresh policy reallocating every `period` (must be non-zero) with
    /// remainder rotation keyed by `seed`.
    pub fn new(period: SimDuration, seed: u64) -> Self {
        assert!(
            period > SimDuration::ZERO,
            "DFRS reallocation period must be non-zero"
        );
        Dfrs {
            period,
            seed,
            weights: BTreeMap::new(),
            last_epoch: None,
            decisions: AuditLog::default(),
            violations: 0,
        }
    }

    /// Give `job` weight `weight` in every future split: a node's 1000
    /// milli are divided proportionally to the residents' weights
    /// (floor, remainder rotated exactly as in the even split). All
    /// weights equal — including the all-default case — reproduces
    /// [`Self::new`]'s even split bit for bit, so weighting is inert
    /// until someone actually asks for skew.
    pub fn with_job_weight(mut self, job: u32, weight: u32) -> Self {
        assert!(weight > 0, "DFRS job weight must be non-zero");
        self.weights.insert(job, weight);
        self
    }

    /// The retained reallocation decisions, oldest first — the audit
    /// trail for the share-conservation property tests. Bounded to the
    /// newest [`AUDIT_LOG_CAP`] entries; [`Self::decisions_total`] and
    /// [`Self::share_violations`] see every decision ever taken.
    pub fn decisions(&self) -> impl Iterator<Item = &DfrsDecision> {
        self.decisions.iter()
    }

    /// Reallocation decisions ever taken (including ring-dropped ones).
    pub fn decisions_total(&self) -> u64 {
        self.decisions.total()
    }

    /// Decisions that violated [`DfrsDecision::respects_shares`] —
    /// counted at decision time over the full run, so the invariant
    /// stays checkable after the ring wraps. Must be 0.
    pub fn share_violations(&self) -> u64 {
        self.violations
    }

    /// Fractional capacity of a node still unpromised when `occ` jobs
    /// occupy it, in milli-units: each resident job is promised half a
    /// node under the occupancy-2 limit.
    fn remaining_milli(occ: u32) -> u32 {
        1000u32.saturating_sub(occ * 500)
    }

    /// The share vector for one epoch — a *pure* function of
    /// `(seed, epoch, view)`, shared by the live policy and the property
    /// tests that replay it: same inputs, same shares, bit for bit. Per
    /// node the split is even (`1000 / k` milli each over `k` residents)
    /// with the remainder milli assigned round-robin starting at job
    /// index `(seed ^ epoch) % k`, so shares sum to exactly 1000 on
    /// every occupied node.
    pub fn shares_for(seed: u64, epoch: u64, view: &ClusterView) -> Vec<(usize, u32, u32)> {
        Self::shares_for_weighted(seed, epoch, view, &BTreeMap::new())
    }

    /// [`Self::shares_for`] generalized to per-job weights (absent jobs
    /// weigh 1): node capacity splits `floor(1000·wᵢ/Σw)` each, with
    /// the remainder milli assigned round-robin from the same
    /// `(seed ^ epoch) % k` start index as the even split. Uniform
    /// weights make every floor equal to `1000 / k` and the remainder
    /// `1000 % k`, so the even split falls out as the identical special
    /// case rather than a separate code path.
    pub fn shares_for_weighted(
        seed: u64,
        epoch: u64,
        view: &ClusterView,
        weights: &BTreeMap<u32, u32>,
    ) -> Vec<(usize, u32, u32)> {
        let mut shares = Vec::new();
        for node in 0..view.occupancy.len() {
            let mut jobs: Vec<u32> = view
                .running
                .iter()
                .filter(|r| r.placement.contains(&node))
                .map(|r| r.id)
                .collect();
            if jobs.is_empty() {
                continue;
            }
            jobs.sort_unstable();
            let k = jobs.len();
            let w: Vec<u64> = jobs
                .iter()
                .map(|j| u64::from(weights.get(j).copied().unwrap_or(1)))
                .collect();
            let total: u64 = w.iter().sum();
            let floors: Vec<u32> = w.iter().map(|&wi| (1000 * wi / total) as u32).collect();
            let rem = 1000 - floors.iter().sum::<u32>();
            let start = ((seed ^ epoch) % k as u64) as usize;
            for (i, &job) in jobs.iter().enumerate() {
                let extra = (((i + k - start) % k) as u32) < rem;
                shares.push((node, job, floors[i] + u32::from(extra)));
            }
        }
        shares
    }
}

impl AllocPolicy for Dfrs {
    fn name(&self) -> &'static str {
        "dfrs"
    }

    fn occupancy_limit(&self) -> u32 {
        2
    }

    fn select(&mut self, queue: &[QueuedJob], view: &ClusterView) -> Option<Allocation> {
        let head = queue.first()?;
        let mut open = view.nodes_below(2);
        if open.len() < head.nodes as usize {
            return None;
        }
        // Most remaining fraction first (an empty node has 1000 milli
        // unpromised, a half-shared one 500), ties by index — the
        // fractional restatement of least-occupied-first packing.
        open.sort_by_key(|&n| (1000 - Self::remaining_milli(view.occupancy[n]), n));
        let mut placement = open[..head.nodes as usize].to_vec();
        placement.sort_unstable();
        Some(Allocation {
            queue_idx: 0,
            placement,
        })
    }

    fn share_update(&mut self, view: &ClusterView) -> Vec<(usize, u32, u32)> {
        let epoch = view.now.as_nanos() / self.period.as_nanos();
        if self.last_epoch == Some(epoch) {
            return Vec::new();
        }
        self.last_epoch = Some(epoch);
        let shares = Self::shares_for_weighted(self.seed, epoch, view, &self.weights);
        if shares.is_empty() {
            // Idle cluster: nothing to reallocate, nothing to audit.
            return shares;
        }
        let d = DfrsDecision {
            at: view.now,
            epoch,
            shares: shares.clone(),
        };
        if !d.respects_shares() {
            self.violations += 1;
        }
        self.decisions.push(d);
        shares
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn qj(id: u32, nodes: u32, est_ns: u64) -> QueuedJob {
        QueuedJob {
            id,
            nodes,
            submitted: t(0),
            est_runtime: SimDuration::from_nanos(est_ns),
            user: 0,
            class: 0,
        }
    }

    fn view(occ: &[u32], running: Vec<RunningJob>) -> ClusterView {
        ClusterView {
            now: t(1_000),
            occupancy: occ.to_vec(),
            running,
            down: vec![false; occ.len()],
        }
    }

    #[test]
    fn fcfs_blocks_behind_wide_head() {
        let mut p = Fcfs;
        let queue = [qj(0, 4, 100), qj(1, 1, 100)];
        // Only 2 free nodes: head (4-wide) blocks, and FCFS never skips.
        let v = view(&[0, 0, 1, 1], vec![]);
        assert!(p.select(&queue, &v).is_none());
        let v = view(&[0, 0, 0, 0], vec![]);
        let a = p.select(&queue, &v).unwrap();
        assert_eq!(a.queue_idx, 0);
        assert_eq!(a.placement, vec![0, 1, 2, 3]);
    }

    #[test]
    fn easy_backfills_short_job_into_shadow_window() {
        let mut p = EasyBackfill::new();
        // Node 0,1 busy with job 9 until t=10_000; head wants 4 nodes,
        // so nodes 2,3 are free but reserved, shadow = 10_000.
        let running = vec![RunningJob {
            id: 9,
            placement: vec![0, 1],
            est_end: t(10_000),
        }];
        let queue = [qj(0, 4, 1), qj(1, 2, 5_000), qj(2, 2, 100_000)];
        let v = view(&[1, 1, 0, 0], running);
        // Job 1 (est end 6_000 <= shadow 10_000) backfills onto the free
        // nodes; job 2 would outlive the shadow and both free nodes are
        // reserved, so it must wait.
        let a = p.select(&queue, &v).unwrap();
        assert_eq!(a.queue_idx, 1);
        assert_eq!(a.placement, vec![2, 3]);
        let d = p.decisions().next().unwrap();
        assert_eq!(d.job, 1);
        assert_eq!(d.head, 0);
        assert_eq!(d.reserved, vec![0, 1, 2, 3]);
        assert!(d.respects_reservation());
    }

    #[test]
    fn easy_backfill_avoids_reserved_nodes_for_long_jobs() {
        let mut p = EasyBackfill::new();
        // Head wants 2; node 0 busy until 10_000, nodes 1..4 free. The
        // reservation is {0 free? no}: free = [1,2,3], head needs 2 →
        // fits immediately. Make head want 4 instead: free 3 of 4.
        let running = vec![RunningJob {
            id: 9,
            placement: vec![0],
            est_end: t(10_000),
        }];
        // Head wants 2 but cluster view shows free = [2,3] with node 1
        // also busy; reserved = [2,3]... use a case where reserved is a
        // strict subset of free: head wants 2, free = [1,2,3]: fits now.
        // So: head wants 3, free = [1,2], reserved = [1,2,0], shadow
        // 10_000. A long 1-node job cannot use 1 or 2 (reserved), none
        // outside → blocked; a short one can.
        let queue = [qj(0, 3, 1), qj(1, 1, 100_000)];
        let v = view(&[1, 0, 0, 1], running.clone());
        assert!(
            p.select(&queue, &v).is_none(),
            "long job must not take a reserved free node"
        );
        let queue = [qj(0, 3, 1), qj(1, 1, 2_000)];
        let a = p.select(&queue, &v).unwrap();
        assert_eq!(a.queue_idx, 1);
        assert!(p.decisions().next().unwrap().respects_reservation());
    }

    #[test]
    fn down_nodes_are_never_allocated() {
        let mut p = Fcfs;
        let queue = [qj(0, 2, 100)];
        let mut v = view(&[0, 0, 0, 0], vec![]);
        v.down = vec![false, true, true, false];
        let a = p.select(&queue, &v).unwrap();
        assert_eq!(a.placement, vec![0, 3], "placement skips down nodes");
        v.down = vec![true, true, true, false];
        assert!(
            p.select(&queue, &v).is_none(),
            "too few up nodes blocks the head"
        );
        // Oversubscription does not rescue a down node either.
        let mut o = Oversubscribed;
        let mut v = view(&[0, 1, 0, 0], vec![]);
        v.down = vec![false, false, true, true];
        let a = o.select(&queue, &v).unwrap();
        assert_eq!(a.placement, vec![0, 1]);
    }

    #[test]
    fn audit_log_ring_keeps_newest_and_counts_all() {
        let mut log: AuditLog<u32> = AuditLog::with_cap(3);
        for i in 0..5 {
            log.push(i);
        }
        assert_eq!(log.total(), 5);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn conservative_backfills_only_into_true_holes() {
        // Job 9 runs on nodes 0,1 until 10_000. Queue: head wants 4
        // nodes (must wait for 0,1), then a 2-node job ending after the
        // head's promised start, then a 2-node job ending before it.
        let running = vec![RunningJob {
            id: 9,
            placement: vec![0, 1],
            est_end: t(10_000),
        }];
        let v = view(&[1, 1, 0, 0], running);
        // Long filler would push the head's reservation (its nodes 2,3
        // are exactly where the head must run at 10_000): blocked.
        let mut p = ConservativeBackfill::new();
        let queue = [qj(0, 4, 1_000), qj(1, 2, 100_000)];
        assert!(p.select(&queue, &v).is_none());
        assert_eq!(p.admissions_total(), 0);
        // Short filler (ends 6_000 <= 10_000) fits the hole: admitted,
        // and the audit shows the head's reservation intact.
        let queue = [qj(0, 4, 1_000), qj(1, 2, 5_000)];
        let a = p.select(&queue, &v).unwrap();
        assert_eq!(a.queue_idx, 1);
        assert_eq!(a.placement, vec![2, 3]);
        let d = p.decisions().next().unwrap();
        assert_eq!(d.job, 1);
        assert_eq!(d.earlier.len(), 1);
        assert_eq!(d.earlier[0].0, 0);
        assert_eq!(d.earlier[0].1, t(10_000));
        assert!(d.respects_reservations());
        assert_eq!(p.reservation_violations(), 0);
    }

    #[test]
    fn conservative_protects_second_queued_job_where_easy_does_not() {
        // The canonical EASY-vs-conservative divergence: job 9 holds
        // nodes 0,1 until 10_000; queue = [4-wide head, 2-wide mid
        // (est 20_000), 2-wide tail (est 9_000)]. EASY reserves only
        // for the head (shadow 10_000, reserved all 4 nodes), so the
        // tail (ends 10_000 <= shadow... est 9_000 ends exactly at
        // 10_000) backfills — delaying the mid job, which EASY never
        // promised anything. Conservative reserves for the mid job at
        // 10_000 too, so the tail (which would end at 10_000 on nodes
        // 2,3 that the *head* needs) still fits, but a tail that ends
        // later than 10_000 cannot start even though EASY's shadow
        // check on the head alone might allow it on non-reserved nodes.
        let running = vec![RunningJob {
            id: 9,
            placement: vec![0, 1],
            est_end: t(10_000),
        }];
        let v = view(&[1, 1, 0, 0], running);
        let queue = [qj(0, 2, 1_000), qj(1, 2, 20_000), qj(2, 2, 9_000)];
        // Head (2-wide) fits now on 2,3 for both policies; admit it
        // conceptually by checking queue_idx 0 first.
        let mut c = ConservativeBackfill::new();
        let a = c.select(&queue, &v).unwrap();
        assert_eq!(a.queue_idx, 0, "head fits immediately");
        // Now the interesting shape: head 4-wide waits at 10_000, mid
        // 2-wide would be planned at 10_000 + 1_000 on freed nodes; a
        // tail ending past the head's start but on nodes the *mid* job
        // will need must wait under conservative.
        let queue = [qj(0, 4, 1_000), qj(1, 2, 20_000), qj(2, 2, 9_500)];
        let mut c = ConservativeBackfill::new();
        assert!(
            c.select(&queue, &v).is_none(),
            "tail ends at 10_500 > head start 10_000 on reserved nodes"
        );
        assert_eq!(c.reservation_violations(), 0);
    }

    #[test]
    fn conservative_memo_invalidates_on_view_change() {
        let running = vec![RunningJob {
            id: 9,
            placement: vec![0, 1],
            est_end: t(10_000),
        }];
        let v = view(&[1, 1, 0, 0], running.clone());
        let queue = [qj(0, 4, 1_000), qj(1, 2, 100_000)];
        let mut p = ConservativeBackfill::new();
        assert!(p.select(&queue, &v).is_none());
        // Same view again: memoized None.
        assert!(p.select(&queue, &v).is_none());
        // Running job finished early: nodes free, head admissible.
        let v2 = view(&[0, 0, 0, 0], vec![]);
        let a = p.select(&queue, &v2).unwrap();
        assert_eq!(a.queue_idx, 0);
        // Memo horizon: same fingerprint but clock past the estimate
        // crossing must replan rather than reuse the None.
        let mut p = ConservativeBackfill::new();
        assert!(p.select(&queue, &v).is_none());
        let mut v3 = view(&[1, 1, 0, 0], running);
        v3.now = t(10_001);
        // Job 9 overran its estimate; occupied nodes are busy until
        // "just after now", so the 4-wide head still can't start — but
        // the replan must actually run (no stale memo panic/false
        // admit). The observable: still None, and a subsequent free
        // view admits.
        assert!(p.select(&queue, &v3).is_none());
        let a = p.select(&queue, &v2).unwrap();
        assert_eq!(a.queue_idx, 0);
    }

    #[test]
    fn multiqueue_prefers_better_class_and_ages() {
        let mut p = MultiQueue::new(3, SimDuration::from_nanos(10_000));
        let mut lo = qj(0, 1, 100);
        lo.class = 2;
        let mut hi = qj(1, 1, 100);
        hi.class = 0;
        hi.submitted = t(500);
        // Both fit; class 0 wins despite arriving later.
        let v = view(&[0, 0], vec![]);
        let a = p.select(&[lo, hi], &v).unwrap();
        assert_eq!(a.queue_idx, 1);
        // After 2 age steps the class-2 job is effectively class 0 and
        // its earlier submit time breaks the tie.
        let mut v = view(&[0, 0], vec![]);
        v.now = t(20_000);
        assert_eq!(p.effective_class(&lo, v.now), 0);
        let a = p.select(&[lo, hi], &v).unwrap();
        assert_eq!(a.queue_idx, 0);
        assert_eq!(p.dispatches(), 2);
    }

    #[test]
    fn multiqueue_head_blocks_like_fcfs_within_class() {
        let mut p = MultiQueue::default();
        let wide = qj(0, 4, 100);
        let narrow = qj(1, 1, 100);
        // Same class: the wide head blocks the narrow job (no backfill
        // in the multi-queue policy).
        let v = view(&[0, 0, 1, 1], vec![]);
        assert!(p.select(&[wide, narrow], &v).is_none());
    }

    #[test]
    fn fairshare_orders_by_usage_ratio_and_audits() {
        let mut p = FairShare::new();
        let mut a0 = qj(0, 1, 1_000_000);
        a0.user = 0;
        let mut b0 = qj(1, 1, 1_000_000);
        b0.user = 1;
        b0.submitted = t(500);
        let v = view(&[0, 0], vec![]);
        // Fresh users: arrival order breaks the 0-0 ratio tie.
        let a = p.select(&[a0, b0], &v).unwrap();
        assert_eq!(a.queue_idx, 0);
        assert!(p.usage(0) > 0.0);
        // User 0 now has usage; user 1's job goes first even though a
        // second user-0 job arrived earlier.
        let mut a1 = qj(2, 1, 1_000_000);
        a1.user = 0;
        let sel = p.select(&[a1, b0], &v).unwrap();
        assert_eq!(sel.queue_idx, 1, "poorer user wins");
        assert_eq!(p.dispatches_total(), 2);
        assert_eq!(p.share_violations(), 0);
        for d in p.decisions() {
            assert!(d.respects_shares());
        }
    }

    #[test]
    fn fairshare_is_work_conserving_and_decays() {
        let mut p = FairShare::new().with_half_life(SimDuration::from_nanos(1_000));
        let mut wide = qj(0, 4, 1_000);
        wide.user = 0;
        let mut narrow = qj(1, 1, 1_000);
        narrow.user = 1;
        // Only 1 free node: user 0's wide job can't fit, user 1 runs.
        let v = view(&[1, 1, 1, 0], vec![]);
        let a = p.select(&[wide, narrow], &v).unwrap();
        assert_eq!(a.queue_idx, 1);
        let u1 = p.usage(1);
        assert!(u1 > 0.0);
        // 10 half-lives later the usage has decayed ~1000x.
        let mut v2 = view(&[0, 0, 0, 0], vec![]);
        v2.now = t(11_000);
        let _ = p.select(&[wide], &v2);
        assert!(p.usage(1) < u1 / 500.0, "usage decays with half-life");
    }

    #[test]
    fn fairshare_shares_weight_the_ratio() {
        let mut p = FairShare::new().with_share(0, 4.0).with_share(1, 1.0);
        let mut a0 = qj(0, 1, 1_000_000);
        a0.user = 0;
        let v = view(&[0, 0], vec![]);
        let _ = p.select(&[a0], &v).unwrap();
        let mut a1 = qj(1, 1, 1_000_000);
        a1.user = 0;
        let mut b0 = qj(2, 1, 4_000_000);
        b0.user = 1;
        b0.submitted = t(500);
        // User 0 used 1 node-ms against share 4 (ratio ~0.25e-3); user
        // 1 has 0. User 1 wins; after running 4 node-ms against share
        // 1, user 0 wins the next round despite new usage.
        let sel = p.select(&[a1, b0], &v).unwrap();
        assert_eq!(sel.queue_idx, 1);
        let sel = p.select(&[a1], &v).unwrap();
        assert_eq!(sel.queue_idx, 0);
        assert!(p.ratio(0) < p.ratio(1), "share 4 discounts usage 4x");
    }

    #[test]
    fn oversubscribed_stacks_two_jobs_per_node() {
        let mut p = Oversubscribed;
        let queue = [qj(0, 2, 100)];
        let v = view(&[1, 1, 2, 2], vec![]);
        let a = p.select(&queue, &v).unwrap();
        assert_eq!(a.placement, vec![0, 1], "least-occupied under the cap");
        let v = view(&[2, 2, 2, 2], vec![]);
        assert!(p.select(&queue, &v).is_none(), "cap 2 is a hard limit");
        assert_eq!(p.occupancy_limit(), 2);
    }

    fn rj(id: u32, placement: &[usize]) -> RunningJob {
        RunningJob {
            id,
            placement: placement.to_vec(),
            est_end: t(1_000_000),
        }
    }

    #[test]
    fn dfrs_packs_by_remaining_fraction() {
        let mut p = Dfrs::new(SimDuration::from_millis(1), 7);
        let queue = [qj(0, 2, 100)];
        // Node 2 is full; nodes 1 and 3 have a whole node unpromised.
        let v = view(&[1, 0, 2, 0], vec![]);
        let a = p.select(&queue, &v).unwrap();
        assert_eq!(a.placement, vec![1, 3], "most remaining fraction first");
        let v = view(&[2, 2, 2, 2], vec![]);
        assert!(p.select(&queue, &v).is_none(), "cap 2 is a hard limit");
        assert_eq!(p.occupancy_limit(), 2);
    }

    #[test]
    fn dfrs_shares_conserve_on_every_node() {
        // Three co-residents force a remainder: 1000 = 3 × 333 + 1.
        let running = vec![rj(10, &[0, 1]), rj(11, &[0]), rj(12, &[0])];
        for epoch in 0..8u64 {
            for seed in 0..8u64 {
                let v = view(&[3, 1, 0], running.clone());
                let shares = Dfrs::shares_for(seed, epoch, &v);
                let mut per_node = BTreeMap::new();
                for &(n, _, s) in &shares {
                    *per_node.entry(n).or_insert(0u32) += s;
                }
                assert_eq!(per_node.get(&0), Some(&1000), "fractions conserve");
                assert_eq!(per_node.get(&1), Some(&1000));
                assert_eq!(per_node.get(&2), None, "idle node promises nothing");
            }
        }
        // The remainder milli rotates with the epoch: job 10 doesn't
        // absorb it every time.
        let v = view(&[3, 1, 0], running);
        let who_extra = |epoch| {
            Dfrs::shares_for(0, epoch, &v)
                .iter()
                .find(|&&(n, _, s)| n == 0 && s == 334)
                .map(|&(_, j, _)| j)
                .unwrap()
        };
        assert_ne!(who_extra(0), who_extra(1), "remainder rotates by epoch");
    }

    #[test]
    fn dfrs_weighted_shares_skew_and_conserve() {
        let running = vec![rj(10, &[0]), rj(11, &[0])];
        let v = view(&[2], running);
        // 3:1 weights → 750/250, no remainder to rotate.
        let mut w = BTreeMap::new();
        w.insert(10u32, 3u32);
        w.insert(11u32, 1u32);
        for epoch in 0..8u64 {
            let shares = Dfrs::shares_for_weighted(9, epoch, &v, &w);
            assert_eq!(shares, vec![(0, 10, 750), (0, 11, 250)]);
        }
        // Skewed weights with a remainder still conserve exactly.
        w.insert(11u32, 2u32); // 3:2 → 600/400
        let shares = Dfrs::shares_for_weighted(9, 0, &v, &w);
        assert_eq!(shares.iter().map(|&(_, _, s)| s).sum::<u32>(), 1000);
        assert_eq!(shares[0].2, 600);
        // Uniform weights are byte-identical to the unweighted split.
        let mut u = BTreeMap::new();
        u.insert(10u32, 7u32);
        u.insert(11u32, 7u32);
        for (epoch, seed) in [(0u64, 0u64), (3, 9), (17, 5)] {
            assert_eq!(
                Dfrs::shares_for_weighted(seed, epoch, &v, &u),
                Dfrs::shares_for(seed, epoch, &v),
                "equal weights degenerate to the even split"
            );
        }
    }

    #[test]
    fn dfrs_with_job_weight_feeds_share_update() {
        let mut p = Dfrs::new(SimDuration::from_nanos(1_000), 3)
            .with_job_weight(1, 3)
            .with_job_weight(2, 1);
        let running = vec![rj(1, &[0]), rj(2, &[0])];
        let mut v = view(&[2], running);
        v.now = t(1_500);
        assert_eq!(p.share_update(&v), vec![(0, 1, 750), (0, 2, 250)]);
        assert_eq!(p.share_violations(), 0);
    }

    #[test]
    fn dfrs_reallocation_is_pure_and_periodic() {
        let mut a = Dfrs::new(SimDuration::from_nanos(1_000), 42);
        let mut b = Dfrs::new(SimDuration::from_nanos(1_000), 42);
        let running = vec![rj(1, &[0]), rj(2, &[0])];
        let mut v = view(&[2, 0], running);
        v.now = t(1_500);
        let sa = a.share_update(&v);
        assert!(!sa.is_empty(), "first epoch crossing reallocates");
        assert_eq!(sa, b.share_update(&v), "same seed + view, same shares");
        v.now = t(1_900);
        assert!(
            a.share_update(&v).is_empty(),
            "no reallocation within an epoch"
        );
        v.now = t(2_100);
        assert!(!a.share_update(&v).is_empty(), "next epoch reallocates");
        assert_eq!(a.decisions_total(), 2);
        assert_eq!(a.share_violations(), 0);
        for d in a.decisions() {
            assert!(d.respects_shares());
        }
    }
}
