//! Pluggable allocation policies for the batch scheduler.
//!
//! A policy sees the queue (in arrival order) and a [`ClusterView`] —
//! per-node occupancy plus the estimated end times of running jobs —
//! and picks the next job to launch together with its node placement.
//! The engine calls [`AllocPolicy::select`] repeatedly at every decision
//! point until it returns `None`, so a policy that can start several
//! jobs in one window simply yields them one at a time.
//!
//! Three policies ship:
//!
//! * [`Fcfs`] — strict arrival order; the head job blocks everything
//!   behind it until enough free nodes exist.
//! * [`EasyBackfill`] — EASY backfilling: the head job gets a
//!   *reservation* (a concrete node set and a shadow time computed from
//!   the running jobs' runtime estimates) and a younger job may jump the
//!   queue only if it cannot delay that reservation — either it finishes
//!   before the shadow time or it runs entirely on nodes the head will
//!   not need. Every backfill decision is logged ([`BackfillDecision`])
//!   so tests can audit the promise.
//! * [`Oversubscribed`] — the fractional/co-scheduling contrast: up to
//!   two jobs share a node (occupancy limit 2), allocation is FCFS onto
//!   the least-occupied nodes. This deliberately breaks the paper's
//!   dedicated-node assumption to measure what OS-level scheduling does
//!   when the batch level stops protecting it.

use hpl_sim::{SimDuration, SimTime};

/// A queued job as the policy sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedJob {
    /// Trace id.
    pub id: u32,
    /// Nodes requested.
    pub nodes: u32,
    /// Submission time (batch epoch + trace offset).
    pub submitted: SimTime,
    /// User runtime estimate.
    pub est_runtime: SimDuration,
}

/// A running job as the policy sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunningJob {
    /// Trace id.
    pub id: u32,
    /// Cluster nodes it occupies.
    pub placement: Vec<usize>,
    /// Estimated end time (start + user estimate).
    pub est_end: SimTime,
}

/// Snapshot of cluster state at a decision point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterView {
    /// Decision time.
    pub now: SimTime,
    /// Jobs currently occupying each node, indexed by cluster node.
    pub occupancy: Vec<u32>,
    /// Jobs launched and not yet completed.
    pub running: Vec<RunningJob>,
    /// Nodes that are crashed or drained, indexed by cluster node.
    /// Policies never place work on these.
    pub down: Vec<bool>,
}

impl ClusterView {
    /// Node indices with occupancy strictly below `limit`, ascending.
    /// Down or drained nodes are never eligible.
    fn nodes_below(&self, limit: u32) -> Vec<usize> {
        (0..self.occupancy.len())
            .filter(|&n| self.occupancy[n] < limit && !self.down[n])
            .collect()
    }
}

/// A policy decision: launch `queue_idx` on `placement`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Index into the queue slice passed to `select`.
    pub queue_idx: usize,
    /// Cluster nodes to run it on (one job node per entry).
    pub placement: Vec<usize>,
}

/// A cluster-level allocation policy.
pub trait AllocPolicy {
    /// Short name for reports and bench output.
    fn name(&self) -> &'static str;

    /// Maximum concurrent jobs per node this policy may create (1 =
    /// dedicated nodes). The engine cross-checks the cluster against
    /// this bound at every decision point.
    fn occupancy_limit(&self) -> u32 {
        1
    }

    /// Pick the next job to launch, or `None` when nothing (more) can
    /// start right now. `queue` is in arrival order and non-empty
    /// entries are never reordered by the engine.
    fn select(&mut self, queue: &[QueuedJob], view: &ClusterView) -> Option<Allocation>;
}

/// First-come-first-served on dedicated nodes.
#[derive(Debug, Default)]
pub struct Fcfs;

impl AllocPolicy for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn select(&mut self, queue: &[QueuedJob], view: &ClusterView) -> Option<Allocation> {
        let head = queue.first()?;
        let free = view.nodes_below(1);
        if free.len() < head.nodes as usize {
            return None;
        }
        Some(Allocation {
            queue_idx: 0,
            placement: free[..head.nodes as usize].to_vec(),
        })
    }
}

/// One audited backfill decision (see [`EasyBackfill::decisions`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackfillDecision {
    /// The job that jumped the queue.
    pub job: u32,
    /// The head job whose reservation it had to respect.
    pub head: u32,
    /// The shadow time promised to the head at this decision: the head
    /// can start no later than this, assuming estimates hold.
    pub shadow: SimTime,
    /// The backfilled job's estimated end (`now + est_runtime`).
    pub est_end: SimTime,
    /// Nodes reserved for the head at this decision.
    pub reserved: Vec<usize>,
    /// Nodes the backfilled job was placed on.
    pub placement: Vec<usize>,
}

impl BackfillDecision {
    /// The EASY invariant for this decision: the backfilled job either
    /// ends (by estimate) before the head's shadow time, or it runs
    /// entirely on nodes outside the head's reservation.
    pub fn respects_reservation(&self) -> bool {
        self.est_end <= self.shadow || self.placement.iter().all(|n| !self.reserved.contains(n))
    }
}

/// EASY backfilling on dedicated nodes.
#[derive(Debug, Default)]
pub struct EasyBackfill {
    decisions: Vec<BackfillDecision>,
}

impl EasyBackfill {
    /// Fresh policy with an empty audit log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every backfill decision taken so far, in decision order — the
    /// audit trail for the reservation-safety property tests.
    pub fn decisions(&self) -> &[BackfillDecision] {
        &self.decisions
    }

    /// The head job's reservation given `view`: the concrete node set
    /// the head will run on and the shadow time at which the last of
    /// those nodes frees up (estimates permitting). Currently-free nodes
    /// are taken first, then nodes of running jobs in estimated-end
    /// order. `None` if the head fits right now (no reservation needed).
    fn reservation(head: &QueuedJob, view: &ClusterView) -> Option<(Vec<usize>, SimTime)> {
        let free = view.nodes_below(1);
        let need = head.nodes as usize;
        if free.len() >= need {
            return None;
        }
        let mut reserved = free;
        let mut running: Vec<&RunningJob> = view.running.iter().collect();
        running.sort_by_key(|r| (r.est_end, r.id));
        let mut shadow = view.now;
        for r in &running {
            for &n in &r.placement {
                if reserved.len() == need {
                    break;
                }
                if !reserved.contains(&n) {
                    reserved.push(n);
                    shadow = r.est_end;
                }
            }
            if reserved.len() == need {
                break;
            }
        }
        // A job wider than the cluster can never be satisfied; the
        // engine rejects those at submit time, so with every node up the
        // walk always completes the set. Crashed/drained nodes can shrink
        // the pool below the head's width until a restart lands — then
        // the head's start time is unknowable, so the shadow moves to the
        // far future and backfill can proceed without breaking a promise.
        if reserved.len() < need {
            shadow = SimTime::from_nanos(u64::MAX);
        }
        reserved.sort_unstable();
        Some((reserved, shadow))
    }
}

impl AllocPolicy for EasyBackfill {
    fn name(&self) -> &'static str {
        "easy"
    }

    fn select(&mut self, queue: &[QueuedJob], view: &ClusterView) -> Option<Allocation> {
        let head = queue.first()?;
        let free = view.nodes_below(1);
        let Some((reserved, shadow)) = Self::reservation(head, view) else {
            // Head fits now: start it (this is also the backfill of
            // width-compatible heads — FCFS order preserved).
            return Some(Allocation {
                queue_idx: 0,
                placement: free[..head.nodes as usize].to_vec(),
            });
        };
        // Head blocked: try to backfill the first younger job that
        // cannot delay the reservation.
        for (qi, cand) in queue.iter().enumerate().skip(1) {
            let want = cand.nodes as usize;
            if want > free.len() {
                continue;
            }
            let est_end = view.now + cand.est_runtime;
            let placement: Vec<usize> = if est_end <= shadow {
                // Finishes before the head needs its nodes: any free
                // nodes do, reserved ones included.
                free[..want].to_vec()
            } else {
                // Outlives the shadow window: only nodes the head will
                // never touch are safe.
                let outside: Vec<usize> = free
                    .iter()
                    .copied()
                    .filter(|n| !reserved.contains(n))
                    .collect();
                if outside.len() < want {
                    continue;
                }
                outside[..want].to_vec()
            };
            self.decisions.push(BackfillDecision {
                job: cand.id,
                head: head.id,
                shadow,
                est_end,
                reserved: reserved.clone(),
                placement: placement.clone(),
            });
            return Some(Allocation {
                queue_idx: qi,
                placement,
            });
        }
        None
    }
}

/// FCFS with two jobs per node (fractional/oversubscribed allocation).
#[derive(Debug, Default)]
pub struct Oversubscribed;

impl AllocPolicy for Oversubscribed {
    fn name(&self) -> &'static str {
        "oversub"
    }

    fn occupancy_limit(&self) -> u32 {
        2
    }

    fn select(&mut self, queue: &[QueuedJob], view: &ClusterView) -> Option<Allocation> {
        let head = queue.first()?;
        let mut open = view.nodes_below(2);
        if open.len() < head.nodes as usize {
            return None;
        }
        // Least-occupied first (spread before stacking), ties by index.
        open.sort_by_key(|&n| (view.occupancy[n], n));
        let mut placement = open[..head.nodes as usize].to_vec();
        placement.sort_unstable();
        Some(Allocation {
            queue_idx: 0,
            placement,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn qj(id: u32, nodes: u32, est_ns: u64) -> QueuedJob {
        QueuedJob {
            id,
            nodes,
            submitted: t(0),
            est_runtime: SimDuration::from_nanos(est_ns),
        }
    }

    fn view(occ: &[u32], running: Vec<RunningJob>) -> ClusterView {
        ClusterView {
            now: t(1_000),
            occupancy: occ.to_vec(),
            running,
            down: vec![false; occ.len()],
        }
    }

    #[test]
    fn fcfs_blocks_behind_wide_head() {
        let mut p = Fcfs;
        let queue = [qj(0, 4, 100), qj(1, 1, 100)];
        // Only 2 free nodes: head (4-wide) blocks, and FCFS never skips.
        let v = view(&[0, 0, 1, 1], vec![]);
        assert!(p.select(&queue, &v).is_none());
        let v = view(&[0, 0, 0, 0], vec![]);
        let a = p.select(&queue, &v).unwrap();
        assert_eq!(a.queue_idx, 0);
        assert_eq!(a.placement, vec![0, 1, 2, 3]);
    }

    #[test]
    fn easy_backfills_short_job_into_shadow_window() {
        let mut p = EasyBackfill::new();
        // Node 0,1 busy with job 9 until t=10_000; head wants 4 nodes,
        // so nodes 2,3 are free but reserved, shadow = 10_000.
        let running = vec![RunningJob {
            id: 9,
            placement: vec![0, 1],
            est_end: t(10_000),
        }];
        let queue = [qj(0, 4, 1), qj(1, 2, 5_000), qj(2, 2, 100_000)];
        let v = view(&[1, 1, 0, 0], running);
        // Job 1 (est end 6_000 <= shadow 10_000) backfills onto the free
        // nodes; job 2 would outlive the shadow and both free nodes are
        // reserved, so it must wait.
        let a = p.select(&queue, &v).unwrap();
        assert_eq!(a.queue_idx, 1);
        assert_eq!(a.placement, vec![2, 3]);
        let d = &p.decisions()[0];
        assert_eq!(d.job, 1);
        assert_eq!(d.head, 0);
        assert_eq!(d.reserved, vec![0, 1, 2, 3]);
        assert!(d.respects_reservation());
    }

    #[test]
    fn easy_backfill_avoids_reserved_nodes_for_long_jobs() {
        let mut p = EasyBackfill::new();
        // Head wants 2; node 0 busy until 10_000, nodes 1..4 free. The
        // reservation is {0 free? no}: free = [1,2,3], head needs 2 →
        // fits immediately. Make head want 4 instead: free 3 of 4.
        let running = vec![RunningJob {
            id: 9,
            placement: vec![0],
            est_end: t(10_000),
        }];
        // Head wants 2 but cluster view shows free = [2,3] with node 1
        // also busy; reserved = [2,3]... use a case where reserved is a
        // strict subset of free: head wants 2, free = [1,2,3]: fits now.
        // So: head wants 3, free = [1,2], reserved = [1,2,0], shadow
        // 10_000. A long 1-node job cannot use 1 or 2 (reserved), none
        // outside → blocked; a short one can.
        let queue = [qj(0, 3, 1), qj(1, 1, 100_000)];
        let v = view(&[1, 0, 0, 1], running.clone());
        assert!(
            p.select(&queue, &v).is_none(),
            "long job must not take a reserved free node"
        );
        let queue = [qj(0, 3, 1), qj(1, 1, 2_000)];
        let a = p.select(&queue, &v).unwrap();
        assert_eq!(a.queue_idx, 1);
        assert!(p.decisions()[0].respects_reservation());
    }

    #[test]
    fn down_nodes_are_never_allocated() {
        let mut p = Fcfs;
        let queue = [qj(0, 2, 100)];
        let mut v = view(&[0, 0, 0, 0], vec![]);
        v.down = vec![false, true, true, false];
        let a = p.select(&queue, &v).unwrap();
        assert_eq!(a.placement, vec![0, 3], "placement skips down nodes");
        v.down = vec![true, true, true, false];
        assert!(
            p.select(&queue, &v).is_none(),
            "too few up nodes blocks the head"
        );
        // Oversubscription does not rescue a down node either.
        let mut o = Oversubscribed;
        let mut v = view(&[0, 1, 0, 0], vec![]);
        v.down = vec![false, false, true, true];
        let a = o.select(&queue, &v).unwrap();
        assert_eq!(a.placement, vec![0, 1]);
    }

    #[test]
    fn oversubscribed_stacks_two_jobs_per_node() {
        let mut p = Oversubscribed;
        let queue = [qj(0, 2, 100)];
        let v = view(&[1, 1, 2, 2], vec![]);
        let a = p.select(&queue, &v).unwrap();
        assert_eq!(a.placement, vec![0, 1], "least-occupied under the cap");
        let v = view(&[2, 2, 2, 2], vec![]);
        assert!(p.select(&queue, &v).is_none(), "cap 2 is a hard limit");
        assert_eq!(p.occupancy_limit(), 2);
    }
}
