//! Workload traces feeding the batch queue.
//!
//! A [`BatchTrace`] is an ordered stream of [`BatchJob`] submissions —
//! each a bulk-synchronous MPI job (compute + Allreduce iterations, the
//! paper's canonical workload shape) with an arrival offset, a node
//! request and a user runtime estimate (the input EASY backfilling
//! reasons about). Traces come from two sources:
//!
//! * [`BatchTrace::synthetic`] — a seeded arrival process (exponential
//!   inter-arrival times, mixed job widths) driven by the `hpl-sim`
//!   [`Rng`], so every trace is replayable from `(seed, n, nodes)`;
//! * hand-written text files in the round-trippable `batch-trace v1`
//!   format ([`BatchTrace::to_text`] / [`BatchTrace::from_text`]),
//!   mirroring the torture scenario format.

use hpl_sim::{Rng, SimDuration};

/// One job submission in a batch trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchJob {
    /// Trace-unique id (also the `job` field of the published
    /// `JobSubmit`/`JobStart`/`JobEnd` observer events).
    pub id: u32,
    /// Arrival offset from the batch epoch (engine start), ns.
    pub submit_ns: u64,
    /// Nodes requested (dedicated under FCFS/EASY; a slot under the
    /// oversubscribed policy).
    pub nodes: u32,
    /// MPI ranks per node.
    pub ranks_per_node: u32,
    /// Bulk-synchronous iterations (compute + Allreduce each).
    pub iters: u32,
    /// Mean compute per iteration per rank, ns.
    pub compute_ns: u64,
    /// Allreduce payload, bytes.
    pub bytes: u64,
    /// User-supplied runtime estimate, ns — what EASY's reservation
    /// arithmetic believes. Overestimates are safe (the head job's
    /// promise holds); underestimates can delay the head, exactly as on
    /// a real machine. Under walltime enforcement this is also the
    /// job's limit: the engine kills the job when it outlives the
    /// estimate (plus the configured grace).
    pub est_runtime_ns: u64,
    /// Submitting user (fair-share accounting key; SWF field 12).
    /// `0` is a fine default for single-user traces.
    pub user: u32,
    /// Priority class for multi-queue policies (0 = highest; SWF queue
    /// number, field 15). Policies that don't discriminate ignore it.
    pub class: u32,
}

impl BatchJob {
    /// Total ranks.
    pub fn nprocs(&self) -> u32 {
        self.nodes * self.ranks_per_node
    }

    /// The runtime estimate as a duration.
    pub fn est_runtime(&self) -> SimDuration {
        SimDuration::from_nanos(self.est_runtime_ns)
    }
}

/// An ordered job stream (non-decreasing `submit_ns`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchTrace {
    /// The jobs, in submission order.
    pub jobs: Vec<BatchJob>,
}

/// Launch/teardown overhead of one launcher tree (perf setup + mpiexec
/// forks + perf's 20 ms counter-collection tail), folded into synthetic
/// runtime estimates so they bracket the true node-occupancy time.
pub(crate) const LAUNCH_OVERHEAD_NS: u64 = 25_000_000;

impl BatchTrace {
    /// A seeded synthetic trace of `n` jobs for a `cluster_nodes`-node
    /// cluster: exponential inter-arrival times (mean 4 ms — fast enough
    /// that a queue actually forms), mixed widths (1, 2, half- and
    /// full-cluster), 1–2 ranks per node (the reference nodes have two
    /// CPUs; CPU oversubscription makes runtimes unboundable by any
    /// honest user estimate, and belongs to the oversubscribed *policy*,
    /// not the trace), 2–4 iterations of 1–3 ms
    /// compute, and generous runtime estimates (so EASY's reservations
    /// hold): each Allreduce barrier waits on the *slowest* of nprocs
    /// exponential compute draws, so the estimate scales the nominal
    /// time by `2 + log2(nprocs)` — an upper bracket on the expected
    /// max-of-exponentials factor plus tail headroom — and adds twice
    /// the launch overhead.
    pub fn synthetic(seed: u64, n: u32, cluster_nodes: u32) -> BatchTrace {
        assert!(cluster_nodes >= 1);
        let mut rng = Rng::for_run(seed ^ 0xBA7C, 0);
        let mut jobs = Vec::with_capacity(n as usize);
        let mut arrival_ns = 0u64;
        let widths: Vec<u32> = [1, 2, cluster_nodes / 2, cluster_nodes]
            .into_iter()
            .filter(|&w| w >= 1 && w <= cluster_nodes)
            .collect();
        for id in 0..n {
            arrival_ns += (rng.exp(4.0e6) as u64).min(40_000_000);
            let nodes = *rng.choose(&widths);
            let ranks_per_node = rng.range_u64(1, 2) as u32;
            let iters = rng.range_u64(2, 4) as u32;
            let compute_ns = rng.range_u64(1_000_000, 3_000_000);
            let bytes = if rng.chance(0.5) { 64 } else { 4096 };
            let nominal = iters as u64 * compute_ns;
            let nprocs = (nodes * ranks_per_node) as u64;
            let est_factor = 2 + (u64::BITS - nprocs.leading_zeros()) as u64;
            jobs.push(BatchJob {
                id,
                submit_ns: arrival_ns,
                nodes,
                ranks_per_node,
                iters,
                compute_ns,
                bytes,
                est_runtime_ns: est_factor * nominal + 2 * LAUNCH_OVERHEAD_NS,
                user: 0,
                class: 0,
            });
        }
        BatchTrace { jobs }
    }

    /// Like [`Self::synthetic`] but spread across `users` submitting
    /// users (round-robin with a seeded shuffle) and `classes` priority
    /// classes, so fair-share and multi-queue policies have something to
    /// discriminate on. `synthetic(seed, n, nodes)` is exactly
    /// `multi_user(seed, n, nodes, 1, 1)`.
    pub fn multi_user(
        seed: u64,
        n: u32,
        cluster_nodes: u32,
        users: u32,
        classes: u32,
    ) -> BatchTrace {
        assert!(users >= 1 && classes >= 1);
        let mut trace = Self::synthetic(seed, n, cluster_nodes);
        let mut rng = Rng::for_run(seed ^ 0x05E6, 1);
        for j in &mut trace.jobs {
            j.user = rng.below(users as u64) as u32;
            j.class = rng.below(classes as u64) as u32;
        }
        trace
    }

    /// Serialise to the `batch-trace v2` text format: a header line then
    /// one `job` line per submission, every field labelled. Whitespace-
    /// and comment-tolerant on the way back in ([`Self::from_text`]),
    /// which also still reads the pre-user/class `v1` lines.
    pub fn to_text(&self) -> String {
        let mut out = String::from("batch-trace v2\n");
        for j in &self.jobs {
            out.push_str(&format!(
                "job {} submit {} nodes {} rpn {} iters {} compute {} bytes {} est {} user {} class {}\n",
                j.id,
                j.submit_ns,
                j.nodes,
                j.ranks_per_node,
                j.iters,
                j.compute_ns,
                j.bytes,
                j.est_runtime_ns,
                j.user,
                j.class
            ));
        }
        out
    }

    /// Parse the `batch-trace v2` format (or `v1`, whose job lines
    /// simply lack the trailing `user`/`class` fields — both default to
    /// 0). Lines starting with `#` and blank lines are skipped; anything
    /// else malformed is an error.
    pub fn from_text(text: &str) -> Result<BatchTrace, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        let v2 = match lines.next() {
            Some("batch-trace v1") => false,
            Some("batch-trace v2") => true,
            other => return Err(format!("bad header {other:?}")),
        };
        let want_toks = if v2 { 20 } else { 16 };
        let mut jobs = Vec::new();
        for line in lines {
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.len() != want_toks || toks[0] != "job" {
                return Err(format!("malformed job line {line:?}"));
            }
            let num = |label_idx: usize, label: &str| -> Result<u64, String> {
                if toks[label_idx] != label {
                    return Err(format!("expected {label:?} in {line:?}"));
                }
                toks[label_idx + 1]
                    .parse::<u64>()
                    .map_err(|_| format!("bad number for {label} in {line:?}"))
            };
            jobs.push(BatchJob {
                id: num(0, "job")? as u32,
                submit_ns: num(2, "submit")?,
                nodes: num(4, "nodes")? as u32,
                ranks_per_node: num(6, "rpn")? as u32,
                iters: num(8, "iters")? as u32,
                compute_ns: num(10, "compute")?,
                bytes: num(12, "bytes")?,
                est_runtime_ns: num(14, "est")?,
                user: if v2 { num(16, "user")? as u32 } else { 0 },
                class: if v2 { num(18, "class")? as u32 } else { 0 },
            });
        }
        for j in &jobs {
            if j.nodes == 0 || j.ranks_per_node == 0 || j.iters == 0 {
                return Err(format!("job {} has a zero dimension", j.id));
            }
        }
        Ok(BatchTrace { jobs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic_and_ordered() {
        let a = BatchTrace::synthetic(7, 12, 4);
        let b = BatchTrace::synthetic(7, 12, 4);
        assert_eq!(a, b);
        assert_eq!(a.jobs.len(), 12);
        for w in a.jobs.windows(2) {
            assert!(w[0].submit_ns <= w[1].submit_ns);
        }
        for j in &a.jobs {
            assert!(j.nodes >= 1 && j.nodes <= 4);
            assert!(j.est_runtime_ns > j.iters as u64 * j.compute_ns);
        }
        // Different seeds differ.
        assert_ne!(a, BatchTrace::synthetic(8, 12, 4));
    }

    #[test]
    fn text_round_trip() {
        let t = BatchTrace::synthetic(3, 6, 4);
        let text = t.to_text();
        let back = BatchTrace::from_text(&text).expect("round trip parses");
        assert_eq!(t, back);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn from_text_accepts_comments_rejects_garbage() {
        let ok = BatchTrace::from_text(
            "# a comment\nbatch-trace v1\n\njob 0 submit 5 nodes 2 rpn 2 iters 3 compute 1000000 bytes 64 est 9000000\n",
        )
        .unwrap();
        assert_eq!(ok.jobs.len(), 1);
        assert_eq!(ok.jobs[0].nprocs(), 4);
        assert_eq!((ok.jobs[0].user, ok.jobs[0].class), (0, 0), "v1 defaults");
        assert!(BatchTrace::from_text("nope").is_err());
        assert!(BatchTrace::from_text("batch-trace v1\njob 0 submit x").is_err());
        assert!(BatchTrace::from_text(
            "batch-trace v1\njob 0 submit 5 nodes 0 rpn 2 iters 3 compute 1 bytes 64 est 9\n"
        )
        .is_err());
        // v2 lines carry user and class; a v2 header demands them.
        let v2 = BatchTrace::from_text(
            "batch-trace v2\njob 0 submit 5 nodes 2 rpn 2 iters 3 compute 1000000 bytes 64 est 9000000 user 3 class 1\n",
        )
        .unwrap();
        assert_eq!((v2.jobs[0].user, v2.jobs[0].class), (3, 1));
        assert!(BatchTrace::from_text(
            "batch-trace v2\njob 0 submit 5 nodes 2 rpn 2 iters 3 compute 1 bytes 64 est 9\n"
        )
        .is_err());
    }

    #[test]
    fn multi_user_spreads_users_and_classes() {
        let t = BatchTrace::multi_user(11, 24, 4, 3, 2);
        assert_eq!(t, BatchTrace::multi_user(11, 24, 4, 3, 2));
        assert!(t.jobs.iter().any(|j| j.user != t.jobs[0].user));
        assert!(t.jobs.iter().any(|j| j.class != t.jobs[0].class));
        assert!(t.jobs.iter().all(|j| j.user < 3 && j.class < 2));
        // The single-user case is exactly the plain synthetic trace.
        assert_eq!(
            BatchTrace::multi_user(7, 8, 4, 1, 1),
            BatchTrace::synthetic(7, 8, 4)
        );
        let text = t.to_text();
        assert_eq!(BatchTrace::from_text(&text).unwrap(), t);
    }
}
