//! # hpl-workloads — NAS-like benchmark models and noise microbenchmarks
//!
//! The paper evaluates the MPI NAS Parallel Benchmarks 3.3 (classes A
//! and B, 8 ranks) on the js22 node. What the *scheduler* sees of each
//! benchmark is its compute/synchronise cycle: how much local work
//! between synchronisation points, and what shape the synchronisation
//! takes. [`nas`] captures exactly that structure per benchmark —
//! embarrassingly parallel (ep), fine-grained allreduce + halo exchange
//! (cg), transpose-dominated alltoall (ft), bucketed alltoall (is),
//! wavefront neighbour pipelines (lu), and multigrid V-cycles (mg) —
//! with per-rank work calibrated so the clean-machine (HPL minimum)
//! execution times land on the paper's Table II values.
//!
//! [`micro`] adds the methodology microbenchmarks of the noise
//! literature: a fixed-work-quantum probe and a configurable
//! noise-injection study (Ferreira et al. style). [`paper`] transcribes
//! the paper's published Tables Ia/Ib/II as data, so comparisons and
//! reproduction-quality gates never hand-copy numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;
pub mod nas;
pub mod paper;

pub use nas::{nas_job, NasBenchmark, NasClass};
