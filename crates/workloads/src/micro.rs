//! Methodology microbenchmarks from the OS-noise literature.
//!
//! * [`noise_probe_job`] — a P-SNAP/FWQ-style probe: every rank computes
//!   a fixed quantum then barriers, many times. On a noiseless machine
//!   every period takes `quantum / smt_factor`; any stretch beyond that
//!   is, by construction, scheduler/OS interference. The paper's §III
//!   methodology (run a short, fixed workload 1000×, study the
//!   distribution) is the whole-application version of this probe.
//! * [`injection_daemon`] — a controllable noise source in the style of
//!   Ferreira/Bridges/Brightwell (SC'08 kernel-level noise injection):
//!   one daemon with exact period and duration, used to sweep noise
//!   frequency/intensity and observe the resonance with application
//!   granularity.

use hpl_kernel::noise::{DaemonSpec, NoiseProfile};
use hpl_mpi::{JobSpec, MpiOp};
use hpl_sim::SimDuration;

/// A fixed-work-quantum probe job: `iters` periods of `quantum` compute
/// followed by a barrier, across `nprocs` ranks.
pub fn noise_probe_job(nprocs: u32, iters: u32, quantum: SimDuration) -> JobSpec {
    let body = [MpiOp::Compute { mean: quantum }, MpiOp::Barrier];
    let mut job = JobSpec::new(nprocs, JobSpec::repeat(iters, &body));
    // The probe measures *OS* noise: disable application-intrinsic jitter.
    job.config.compute_jitter = 0.0;
    job
}

/// A pipelined wavefront probe: `iters` sweeps of compute + a true
/// rank-to-rank pipeline (no global barrier). Wavefront codes are the
/// worst case for OS noise *latency* (a hit on rank 0 ripples through
/// every downstream rank), which is why Sweep3D-style applications
/// feature so prominently in the noise literature the paper builds on.
pub fn wavefront_probe_job(nprocs: u32, iters: u32, quantum: SimDuration) -> JobSpec {
    let body = [
        MpiOp::Compute { mean: quantum },
        MpiOp::Wavefront { bytes: 16 * 1024 },
    ];
    let mut job = JobSpec::new(nprocs, JobSpec::repeat(iters, &body));
    job.config.compute_jitter = 0.0;
    job
}

/// A single injection daemon with the given period and service time
/// (deterministic-ish: tiny jitter keeps the event stream aperiodic, as
/// the injection papers do to avoid lockstep artefacts).
pub fn injection_daemon(period: SimDuration, duration: SimDuration) -> DaemonSpec {
    let mut d = DaemonSpec::periodic("noise-inject", period, duration);
    // Narrow the service distribution: injection wants controlled noise.
    d.service_sigma = 0.05;
    d.service_max = duration * 2;
    d
}

/// A noise profile containing only injection daemons, one per CPU —
/// the kernel-level injection setup.
pub fn injection_profile(ncpus: u32, period: SimDuration, duration: SimDuration) -> NoiseProfile {
    let daemons = (0..ncpus)
        .map(|c| injection_daemon(period, duration).pinned_to(hpl_topology::CpuId(c)))
        .collect();
    NoiseProfile {
        daemons,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_job_structure() {
        let job = noise_probe_job(8, 100, SimDuration::from_millis(1));
        assert_eq!(job.ops.len(), 200);
        assert_eq!(job.config.compute_jitter, 0.0);
        assert_eq!(job.total_compute(), SimDuration::from_millis(100));
    }

    #[test]
    fn wavefront_probe_structure() {
        let job = wavefront_probe_job(4, 10, SimDuration::from_millis(2));
        let waves = job
            .ops
            .iter()
            .filter(|o| matches!(o, MpiOp::Wavefront { .. }))
            .count();
        assert_eq!(waves, 10);
        assert_eq!(job.total_compute(), SimDuration::from_millis(20));
    }

    #[test]
    fn wavefront_probe_runs_end_to_end() {
        use hpl_kernel::NodeBuilder;
        use hpl_mpi::{launch, SchedMode};
        use hpl_topology::Topology;
        let mut node = NodeBuilder::new(Topology::power6_js22())
            .with_seed(3)
            .build();
        let job = wavefront_probe_job(8, 4, SimDuration::from_millis(1));
        let h = launch(&mut node, &job, SchedMode::Cfs);
        let t = h.run_to_completion(&mut node, 2_000_000_000);
        // A pipeline serialises the first sweep: expect at least
        // nprocs x one message hop beyond pure compute.
        assert!(t.as_secs_f64() > 0.004);
    }

    #[test]
    fn injection_daemon_is_narrow() {
        let d = injection_daemon(SimDuration::from_millis(10), SimDuration::from_micros(100));
        assert!(d.service_sigma < 0.1);
        assert_eq!(d.service_max, SimDuration::from_micros(200));
    }

    #[test]
    fn injection_profile_pins_per_cpu() {
        let p = injection_profile(
            8,
            SimDuration::from_millis(10),
            SimDuration::from_micros(50),
        );
        assert_eq!(p.daemons.len(), 8);
        assert!(p.daemons.iter().all(|d| d.pinned.is_some()));
    }
}
