//! NAS Parallel Benchmark models.
//!
//! Each benchmark is modelled by its synchronisation structure (what the
//! scheduler interacts with), with per-rank compute calibrated from the
//! paper's Table II **HPL minimum** column — the cleanest observed run on
//! the real machine. Calibration accounts for the SMT-contended steady
//! state of an 8-rank run on 8 hardware threads (per-thread throughput
//! `smt_busy_factor`) and subtracts the analytic message costs of the
//! communication pattern, so simulated clean runs land on the paper's
//! times by construction and every *other* number (variance, counter
//! distributions, standard-Linux slowdowns) is emergent.

use hpl_mpi::{JobSpec, MpiConfig, MpiOp};
use hpl_sim::SimDuration;

/// The six NAS benchmarks the paper reports (bt/sp need square rank
/// counts and are omitted by the paper for 8 ranks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NasBenchmark {
    /// Conjugate gradient: fine-grained allreduces + halo exchanges.
    Cg,
    /// Embarrassingly parallel: pure compute, a few closing reductions.
    Ep,
    /// 3-D FFT: few iterations, transpose alltoalls dominate.
    Ft,
    /// Integer sort: bucketed alltoall + allreduce per iteration.
    Is,
    /// LU solver: many timesteps of wavefront neighbour exchanges.
    Lu,
    /// Multigrid: V-cycle sweeps with boundary exchanges + allreduce.
    Mg,
}

/// NAS problem classes the paper uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NasClass {
    /// Small data set (chosen by the paper to make OS noise visible).
    A,
    /// Medium data set.
    B,
}

impl NasBenchmark {
    /// All benchmarks in the paper's table order.
    pub const ALL: [NasBenchmark; 6] = [
        NasBenchmark::Cg,
        NasBenchmark::Ep,
        NasBenchmark::Ft,
        NasBenchmark::Is,
        NasBenchmark::Lu,
        NasBenchmark::Mg,
    ];

    /// Lower-case name as in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            NasBenchmark::Cg => "cg",
            NasBenchmark::Ep => "ep",
            NasBenchmark::Ft => "ft",
            NasBenchmark::Is => "is",
            NasBenchmark::Lu => "lu",
            NasBenchmark::Mg => "mg",
        }
    }
}

impl NasClass {
    /// Both classes.
    pub const ALL: [NasClass; 2] = [NasClass::A, NasClass::B];

    /// Class letter.
    pub fn name(self) -> &'static str {
        match self {
            NasClass::A => "A",
            NasClass::B => "B",
        }
    }
}

/// Structural parameters of one benchmark configuration.
struct Shape {
    /// Paper's HPL minimum execution time (s) — the calibration target.
    target_secs: f64,
    /// Number of iterations (synchronisation periods).
    iters: u32,
    /// Communication ops per iteration (costs subtracted from compute).
    comm: &'static [MpiOp],
    /// Trailing ops after the iteration loop (e.g. ep's final reductions).
    tail: &'static [MpiOp],
}

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

fn shape(bench: NasBenchmark, class: NasClass) -> Shape {
    use MpiOp::*;
    match (bench, class) {
        // cg: 75 solver iterations; two dot-product allreduces and a
        // sparse halo exchange per iteration.
        (NasBenchmark::Cg, NasClass::A) => Shape {
            target_secs: 0.68,
            iters: 75,
            comm: &[
                Allreduce { bytes: 8 },
                Allreduce { bytes: 8 },
                NeighborExchange { bytes: 110 * KB },
            ],
            tail: &[],
        },
        (NasBenchmark::Cg, NasClass::B) => Shape {
            target_secs: 36.96,
            iters: 75,
            comm: &[
                Allreduce { bytes: 8 },
                Allreduce { bytes: 8 },
                NeighborExchange { bytes: 380 * KB },
            ],
            tail: &[],
        },
        // ep: chunked local computation, three closing statistics
        // reductions, no communication in between.
        (NasBenchmark::Ep, NasClass::A) => Shape {
            target_secs: 8.54,
            iters: 16,
            comm: &[],
            tail: &[
                Allreduce { bytes: 8 },
                Allreduce { bytes: 8 },
                Allreduce { bytes: 80 },
            ],
        },
        (NasBenchmark::Ep, NasClass::B) => Shape {
            target_secs: 34.14,
            iters: 16,
            comm: &[],
            tail: &[
                Allreduce { bytes: 8 },
                Allreduce { bytes: 8 },
                Allreduce { bytes: 80 },
            ],
        },
        // ft: 6 FFT timesteps, transpose alltoall each, plus checksum
        // allreduce.
        (NasBenchmark::Ft, NasClass::A) => Shape {
            target_secs: 2.05,
            iters: 6,
            comm: &[Alltoall { bytes: 2 * MB }, Allreduce { bytes: 16 }],
            tail: &[],
        },
        (NasBenchmark::Ft, NasClass::B) => Shape {
            target_secs: 22.58,
            iters: 20,
            comm: &[Alltoall { bytes: 5 * MB }, Allreduce { bytes: 16 }],
            tail: &[],
        },
        // is: 10 ranking iterations: key histogram allreduce + bucket
        // alltoall.
        (NasBenchmark::Is, NasClass::A) => Shape {
            target_secs: 0.35,
            iters: 10,
            comm: &[Allreduce { bytes: 4 * KB }, Alltoall { bytes: 512 * KB }],
            tail: &[],
        },
        (NasBenchmark::Is, NasClass::B) => Shape {
            target_secs: 1.82,
            iters: 10,
            comm: &[Allreduce { bytes: 4 * KB }, Alltoall { bytes: 2 * MB }],
            tail: &[],
        },
        // lu: 250 SSOR timesteps with wavefront (neighbour) exchanges.
        (NasBenchmark::Lu, NasClass::A) => Shape {
            target_secs: 17.71,
            iters: 250,
            comm: &[
                NeighborExchange { bytes: 40 * KB },
                NeighborExchange { bytes: 40 * KB },
            ],
            tail: &[Allreduce { bytes: 40 }],
        },
        (NasBenchmark::Lu, NasClass::B) => Shape {
            target_secs: 71.81,
            iters: 250,
            comm: &[
                NeighborExchange { bytes: 100 * KB },
                NeighborExchange { bytes: 100 * KB },
            ],
            tail: &[Allreduce { bytes: 40 }],
        },
        // mg: V-cycle sweeps: boundary exchanges at several levels plus a
        // norm allreduce per cycle.
        (NasBenchmark::Mg, NasClass::A) => Shape {
            target_secs: 0.96,
            iters: 16,
            comm: &[
                NeighborExchange { bytes: 130 * KB },
                NeighborExchange { bytes: 32 * KB },
                Allreduce { bytes: 8 },
            ],
            tail: &[],
        },
        (NasBenchmark::Mg, NasClass::B) => Shape {
            target_secs: 4.48,
            iters: 20,
            comm: &[
                NeighborExchange { bytes: 300 * KB },
                NeighborExchange { bytes: 72 * KB },
                Allreduce { bytes: 8 },
            ],
            tail: &[],
        },
    }
}

/// Analytic full-speed cost the runtime will charge for one op's message
/// processing (must mirror `RankProgram`'s LogP accounting).
fn msg_cost(cfg: &MpiConfig, op: &MpiOp, nprocs: u32) -> f64 {
    let p = nprocs as f64;
    let alpha = cfg.alpha.as_secs_f64();
    let beta = cfg.beta_ns_per_byte * 1e-9;
    match op {
        MpiOp::Compute { .. } => 0.0,
        MpiOp::Barrier => p.max(2.0).log2().ceil() * alpha,
        MpiOp::Allreduce { bytes } => p.max(2.0).log2().ceil() * (alpha + beta * *bytes as f64),
        MpiOp::Alltoall { bytes } => (p - 1.0) * (alpha + beta * *bytes as f64),
        MpiOp::NeighborExchange { bytes } => 2.0 * (alpha + beta * *bytes as f64),
        MpiOp::Bcast { bytes } | MpiOp::Reduce { bytes } => {
            p.max(2.0).log2().ceil() * (alpha + beta * *bytes as f64)
        }
        MpiOp::Wavefront { bytes } => alpha + beta * *bytes as f64,
        // Quiesce (barrier-shaped sync phase) plus the local write; the
        // commit barrier is node-local and costs no fabric messages.
        MpiOp::Checkpoint { cost } => p.max(2.0).log2().ceil() * alpha + cost.as_secs_f64(),
    }
}

/// The SMT-contended per-thread throughput used for calibration: with 8
/// ranks on 8 hardware threads every sibling pair is busy and each
/// sibling's working set continuously evicts the other's, so a rank's
/// wall time ≈ work / steady_state_factor. Computed from the default
/// kernel cost model.
pub fn calibration_thread_factor() -> f64 {
    hpl_kernel::KernelConfig::default().smt_steady_state_thread_factor()
}

/// Build the MPI job for a NAS benchmark configuration.
///
/// `nprocs` is 8 in the paper; other counts scale the per-rank work so
/// total work stays constant (strong scaling), which the scaling-study
/// extension uses.
pub fn nas_job(bench: NasBenchmark, class: NasClass, nprocs: u32) -> JobSpec {
    assert!(nprocs > 0);
    let s = shape(bench, class);
    let cfg = MpiConfig::default();

    // Work the calibration target implies, at reference 8 ranks. The
    // measured execution time includes a roughly fixed launch cost
    // (rank forks, MPI_Init connection rounds, finalize) that is wall
    // time, not SMT-scaled work; subtract it before converting.
    const LAUNCH_OVERHEAD_SECS: f64 = 0.025;
    let total_work = (s.target_secs - LAUNCH_OVERHEAD_SECS).max(0.01) * calibration_thread_factor();
    let comm_per_iter: f64 = s.comm.iter().map(|op| msg_cost(&cfg, op, 8)).sum();
    let tail_cost: f64 = s.tail.iter().map(|op| msg_cost(&cfg, op, 8)).sum();
    let compute_total = (total_work - comm_per_iter * s.iters as f64 - tail_cost).max(0.01);
    // Strong scaling: per-rank compute shrinks with more ranks.
    let compute_per_iter = compute_total / s.iters as f64 * (8.0 / nprocs as f64);

    let mut body = vec![MpiOp::Compute {
        mean: SimDuration::from_secs_f64(compute_per_iter),
    }];
    body.extend_from_slice(s.comm);
    let mut ops = JobSpec::repeat(s.iters, &body);
    ops.extend_from_slice(s.tail);
    JobSpec::new(nprocs, ops).with_config(cfg)
}

/// Paper Table II HPL-minimum execution time for a configuration
/// (seconds) — the calibration target, exposed for experiment reports.
pub fn paper_hpl_min_secs(bench: NasBenchmark, class: NasClass) -> f64 {
    shape(bench, class).target_secs
}

/// All twelve `(benchmark, class)` configurations in table order.
pub fn all_configs() -> Vec<(NasBenchmark, NasClass)> {
    let mut v = Vec::new();
    for b in NasBenchmark::ALL {
        for c in NasClass::ALL {
            v.push((b, c));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_configurations() {
        assert_eq!(all_configs().len(), 12);
    }

    #[test]
    fn job_has_expected_iteration_count() {
        let job = nas_job(NasBenchmark::Cg, NasClass::A, 8);
        let barrier_like = job
            .ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    MpiOp::Allreduce { .. } | MpiOp::Barrier | MpiOp::Alltoall { .. }
                )
            })
            .count();
        // cg: 2 allreduces per iteration x 75.
        assert_eq!(barrier_like, 150);
    }

    #[test]
    fn ep_has_no_communication_in_loop() {
        let job = nas_job(NasBenchmark::Ep, NasClass::A, 8);
        let comm_ops = job
            .ops
            .iter()
            .filter(|op| !matches!(op, MpiOp::Compute { .. }))
            .count();
        // Only the three tail reductions.
        assert_eq!(comm_ops, 3);
    }

    #[test]
    fn calibration_total_work_matches_target() {
        for (b, c) in all_configs() {
            let job = nas_job(b, c, 8);
            let cfg = MpiConfig::default();
            let compute = job.total_compute().as_secs_f64();
            let comm: f64 = job.ops.iter().map(|op| msg_cost(&cfg, op, 8)).sum();
            // Matches nas_job's arithmetic: paper time minus the fixed
            // launch overhead, converted at the steady-state factor.
            let target = (paper_hpl_min_secs(b, c) - 0.025) * calibration_thread_factor();
            let total = compute + comm;
            let err = (total - target).abs() / target;
            assert!(
                err < 0.02,
                "{}.{}: total work {total:.3}s vs target {target:.3}s",
                b.name(),
                c.name()
            );
        }
    }

    #[test]
    fn class_b_is_bigger_than_class_a() {
        for b in NasBenchmark::ALL {
            let a = nas_job(b, NasClass::A, 8).total_compute();
            let bb = nas_job(b, NasClass::B, 8).total_compute();
            assert!(bb > a, "{}: B ({bb}) should exceed A ({a})", b.name());
        }
    }

    #[test]
    fn strong_scaling_reduces_per_rank_work() {
        let w8 = nas_job(NasBenchmark::Ep, NasClass::A, 8).total_compute();
        let w16 = nas_job(NasBenchmark::Ep, NasClass::A, 16).total_compute();
        let ratio = w8.as_secs_f64() / w16.as_secs_f64();
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(NasBenchmark::Cg.name(), "cg");
        assert_eq!(NasClass::B.name(), "B");
    }

    #[test]
    fn sync_granularity_ordering() {
        // cg synchronises far more often than ep for similar runtimes:
        // the per-segment compute is much smaller.
        let cg = nas_job(NasBenchmark::Cg, NasClass::A, 8);
        let ep = nas_job(NasBenchmark::Ep, NasClass::A, 8);
        let seg = |j: &JobSpec| {
            let computes: Vec<f64> = j
                .ops
                .iter()
                .filter_map(|op| match op {
                    MpiOp::Compute { mean } => Some(mean.as_secs_f64()),
                    _ => None,
                })
                .collect();
            computes.iter().sum::<f64>() / computes.len() as f64
        };
        assert!(seg(&cg) < seg(&ep) / 10.0);
    }
}
