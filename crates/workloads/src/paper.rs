//! The paper's published results, as data.
//!
//! Tables Ia, Ib and II of Gioiosa/McKee/Valero (CLUSTER 2010),
//! transcribed row by row so experiments can print paper-vs-measured
//! comparisons and tests can assert reproduction quality without anyone
//! re-reading the PDF. Numbers are exactly as printed (including the
//! outliers the text discusses, e.g. cg.A.8's 46.69 s maximum).

use crate::nas::{NasBenchmark, NasClass};

/// Min/avg/max triple as printed in Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinAvgMax {
    /// Minimum over the 1000 runs.
    pub min: f64,
    /// Average.
    pub avg: f64,
    /// Maximum.
    pub max: f64,
}

/// Min/avg/max/variation row of Table II (seconds, percent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeRow {
    /// Minimum execution time (s).
    pub min: f64,
    /// Average (s).
    pub avg: f64,
    /// Maximum (s).
    pub max: f64,
    /// The paper's variation metric `(max − min)/min × 100`.
    pub var_pct: f64,
}

/// One benchmark configuration's published numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Benchmark.
    pub bench: NasBenchmark,
    /// Problem class.
    pub class: NasClass,
    /// Table Ia: CPU migrations, standard Linux.
    pub std_migrations: MinAvgMax,
    /// Table Ia: context switches, standard Linux.
    pub std_switches: MinAvgMax,
    /// Table Ib: CPU migrations, HPL.
    pub hpl_migrations: MinAvgMax,
    /// Table Ib: context switches, HPL.
    pub hpl_switches: MinAvgMax,
    /// Table II: execution time, standard Linux.
    pub std_time: TimeRow,
    /// Table II: execution time, HPL.
    pub hpl_time: TimeRow,
}

const fn mam(min: f64, avg: f64, max: f64) -> MinAvgMax {
    MinAvgMax { min, avg, max }
}

const fn time(min: f64, avg: f64, max: f64, var_pct: f64) -> TimeRow {
    TimeRow {
        min,
        avg,
        max,
        var_pct,
    }
}

/// All twelve rows, in the paper's table order.
pub const ROWS: [PaperRow; 12] = [
    PaperRow {
        bench: NasBenchmark::Cg,
        class: NasClass::A,
        std_migrations: mam(30.0, 63.61, 2078.0),
        std_switches: mam(460.0, 602.57, 5755.0),
        hpl_migrations: mam(10.0, 11.52, 14.0),
        hpl_switches: mam(333.0, 356.32, 391.0),
        std_time: time(0.69, 1.04, 46.69, 6608.70),
        hpl_time: time(0.68, 0.69, 0.70, 2.94),
    },
    PaperRow {
        bench: NasBenchmark::Cg,
        class: NasClass::B,
        std_migrations: mam(28.0, 90.62, 3499.0),
        std_switches: mam(1726.0, 2011.80, 8243.0),
        hpl_migrations: mam(10.0, 12.31, 21.0),
        hpl_switches: mam(343.0, 374.72, 484.0),
        std_time: time(36.98, 42.04, 126.48, 242.02),
        hpl_time: time(36.96, 37.27, 38.17, 3.27),
    },
    PaperRow {
        bench: NasBenchmark::Ep,
        class: NasClass::A,
        std_migrations: mam(29.0, 52.41, 615.0),
        std_switches: mam(550.0, 652.62, 1886.0),
        hpl_migrations: mam(10.0, 12.02, 18.0),
        hpl_switches: mam(315.0, 344.77, 436.0),
        std_time: time(8.54, 8.87, 14.59, 70.84),
        hpl_time: time(8.54, 8.55, 8.57, 0.35),
    },
    PaperRow {
        bench: NasBenchmark::Ep,
        class: NasClass::B,
        std_migrations: mam(28.0, 69.02, 2536.0),
        std_switches: mam(1198.0, 1333.70, 5239.0),
        hpl_migrations: mam(10.0, 12.04, 19.0),
        hpl_switches: mam(329.0, 365.39, 472.0),
        std_time: time(34.14, 34.69, 53.34, 56.24),
        hpl_time: time(34.14, 34.19, 34.33, 0.56),
    },
    PaperRow {
        bench: NasBenchmark::Ft,
        class: NasClass::A,
        std_migrations: mam(20.0, 53.02, 565.0),
        std_switches: mam(318.0, 575.10, 1609.0),
        hpl_migrations: mam(10.0, 11.43, 17.0),
        hpl_switches: mam(331.0, 361.32, 413.0),
        std_time: time(2.27, 2.50, 9.07, 327.31),
        hpl_time: time(2.05, 2.06, 2.08, 1.46),
    },
    PaperRow {
        bench: NasBenchmark::Ft,
        class: NasClass::B,
        std_migrations: mam(28.0, 51.23, 1163.0),
        std_switches: mam(1111.0, 1222.50, 3258.0),
        hpl_migrations: mam(10.0, 12.11, 19.0),
        hpl_switches: mam(337.0, 365.29, 414.0),
        std_time: time(22.56, 22.91, 41.78, 85.20),
        hpl_time: time(22.58, 22.66, 22.71, 0.58),
    },
    PaperRow {
        bench: NasBenchmark::Is,
        class: NasClass::A,
        std_migrations: mam(29.0, 52.18, 160.0),
        std_switches: mam(396.0, 537.35, 956.0),
        hpl_migrations: mam(10.0, 11.39, 14.0),
        hpl_switches: mam(326.0, 347.37, 382.0),
        std_time: time(0.35, 0.57, 3.27, 832.29),
        hpl_time: time(0.35, 0.36, 0.36, 2.86),
    },
    PaperRow {
        bench: NasBenchmark::Is,
        class: NasClass::B,
        std_migrations: mam(28.0, 52.88, 370.0),
        std_switches: mam(519.0, 610.93, 1213.0),
        hpl_migrations: mam(10.0, 12.07, 23.0),
        hpl_switches: mam(340.0, 354.97, 374.0),
        std_time: time(1.82, 1.88, 4.82, 164.84),
        hpl_time: time(1.82, 1.83, 1.84, 1.10),
    },
    PaperRow {
        bench: NasBenchmark::Lu,
        class: NasClass::A,
        std_migrations: mam(18.0, 70.79, 1368.0),
        std_switches: mam(219.0, 1030.40, 3870.0),
        hpl_migrations: mam(10.0, 12.84, 21.0),
        hpl_switches: mam(325.0, 361.81, 604.0),
        std_time: time(17.56, 19.34, 50.85, 189.58),
        hpl_time: time(17.71, 17.79, 18.00, 1.64),
    },
    PaperRow {
        bench: NasBenchmark::Lu,
        class: NasClass::B,
        std_migrations: mam(29.0, 69.04, 3657.0),
        std_switches: mam(2518.0, 2933.50, 9131.0),
        hpl_migrations: mam(10.0, 12.97, 22.0),
        hpl_switches: mam(340.0, 381.46, 455.0),
        std_time: time(71.93, 79.37, 140.03, 94.68),
        hpl_time: time(71.81, 73.51, 77.64, 8.12),
    },
    PaperRow {
        bench: NasBenchmark::Mg,
        class: NasClass::A,
        std_migrations: mam(29.0, 54.73, 590.0),
        std_switches: mam(91.0, 556.24, 1776.0),
        hpl_migrations: mam(10.0, 11.94, 22.0),
        hpl_switches: mam(357.0, 386.60, 423.0),
        std_time: time(1.40, 1.60, 7.80, 457.14),
        hpl_time: time(0.96, 0.97, 0.97, 1.04),
    },
    PaperRow {
        bench: NasBenchmark::Mg,
        class: NasClass::B,
        std_migrations: mam(29.0, 54.68, 853.0),
        std_switches: mam(531.0, 660.43, 2396.0),
        hpl_migrations: mam(10.0, 12.55, 17.0),
        hpl_switches: mam(357.0, 386.44, 422.0),
        std_time: time(4.48, 4.96, 28.35, 532.81),
        hpl_time: time(4.48, 4.93, 4.54, 1.34),
    },
];

/// Look up the published row for a configuration.
pub fn row(bench: NasBenchmark, class: NasClass) -> &'static PaperRow {
    ROWS.iter()
        .find(|r| r.bench == bench && r.class == class)
        .expect("all twelve configurations are tabled")
}

/// The paper's headline: average HPL variation across benchmarks.
pub fn hpl_avg_variation_pct() -> f64 {
    ROWS.iter().map(|r| r.hpl_time.var_pct).sum::<f64>() / ROWS.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_rows_cover_all_configs() {
        for (b, c) in crate::nas::all_configs() {
            let r = row(b, c);
            assert_eq!((r.bench, r.class), (b, c));
        }
    }

    #[test]
    fn headline_average_matches_abstract() {
        // The abstract says 2.11% on average.
        let avg = hpl_avg_variation_pct();
        assert!((avg - 2.11).abs() < 0.02, "avg {avg}");
    }

    #[test]
    fn hpl_always_beats_std_in_the_paper() {
        for r in &ROWS {
            assert!(r.hpl_time.var_pct < r.std_time.var_pct);
            assert!(r.hpl_migrations.avg < r.std_migrations.avg);
            assert!(r.hpl_switches.avg < r.std_switches.avg);
        }
    }

    #[test]
    fn calibration_targets_match_hpl_min() {
        // nas.rs calibrates against these same numbers.
        for r in &ROWS {
            assert_eq!(
                crate::nas::paper_hpl_min_secs(r.bench, r.class),
                r.hpl_time.min
            );
        }
    }

    #[test]
    fn migration_floor_is_ten_everywhere() {
        for r in &ROWS {
            assert_eq!(r.hpl_migrations.min, 10.0, "{}", r.bench.name());
        }
    }
}
