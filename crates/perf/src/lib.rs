//! # hpl-perf — performance-counter subsystem
//!
//! The paper's methodology rests on the Linux `perf` infrastructure
//! (introduced in 2.6.31): software events — context switches and CPU
//! migrations above all — correlated with execution time expose the
//! scheduler as the dominant noise source. This crate reproduces that
//! measurement layer for the simulated kernel:
//!
//! * [`event`] — the event taxonomy: software events ([`event::SwEvent`])
//!   counted by the scheduler and hardware-ish events ([`event::HwEvent`])
//!   derived from the execution model (cycles lost to cold caches or SMT
//!   contention).
//! * [`counters`] — dense per-CPU / global [`counters::CounterSet`]s with
//!   snapshot-and-diff support.
//! * [`session`] — [`session::PerfSession`], the equivalent of running
//!   `perf stat -a` around an application: opens a window, diffs counters,
//!   renders a `perf stat`-style report.
//! * [`metrics`] — the scheduler metrics registry
//!   ([`metrics::SchedMetrics`]): per-CPU counters and log2 histograms
//!   filled by the kernel's observer sinks.
//! * [`record`] — per-run records ([`record::RunRecord`]) and tables used
//!   to regenerate the paper's Tables I/II and the Fig. 3 scatter data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod event;
pub mod metrics;
pub mod record;
pub mod session;

pub use counters::{CounterSet, PerCpuCounters};
pub use event::{Event, HwEvent, SwEvent};
pub use metrics::{Log2Hist, SchedMetrics};
pub use record::{RunOutcome, RunRecord, RunTable};
pub use session::PerfSession;
