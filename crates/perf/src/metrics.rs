//! Scheduler metrics registry: counters plus log2 latency histograms.
//!
//! The observability redesign routes every kernel decision through
//! `SchedObserver` sinks (see `hpl-kernel::observe`); the metrics sink
//! distils that event stream into this registry — per-CPU switch
//! counters and power-of-two histograms of the three distributions the
//! paper's analysis cares about: how long a task held the CPU
//! (timeslice), how long a woken task waited before running (off-CPU
//! latency), and how bursty migrations are (inter-arrival). The bench
//! harness merges one registry per repetition into a [`SchedMetrics`]
//! per `RunTable`.
//!
//! Lives in `hpl-perf` (not `hpl-kernel`) so records and reports can
//! carry a registry without a dependency cycle: perf is below kernel in
//! the crate DAG and kernel re-exports these types.

/// Power-of-two histogram over `u64` samples (nanoseconds by
/// convention), in the mould of BPF's `hist_log2`.
///
/// Bucket `0` counts zero samples; bucket `i >= 1` counts samples in
/// `[2^(i-1), 2^i)`. 65 buckets cover the full `u64` range, so
/// recording can never saturate or clip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Hist {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Hist {
    /// Empty histogram.
    pub fn new() -> Self {
        Log2Hist {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a sample: `0` for `0`, else `floor(log2(v)) + 1`.
    fn index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Raw bucket counts (`buckets()[0]` = zero samples, bucket `i`
    /// = samples in `[2^(i-1), 2^i)`).
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Inclusive-exclusive value range `[lo, hi)` of bucket `i`
    /// (bucket 0 is the degenerate `[0, 1)`).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 1)
        } else {
            (1u64 << (i - 1), (1u128 << i).min(u64::MAX as u128) as u64)
        }
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Approximate percentile (`q` in `0..=100`) using the geometric
    /// midpoint of the bucket holding the rank — the usual log2-hist
    /// estimate, exact only for the min/max of a populated bucket.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 100.0) / 100.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                let (lo, hi) = Self::bucket_range(i);
                return Some(((lo as u128 + hi as u128) / 2) as u64);
            }
        }
        Some(self.max)
    }

    /// Multi-line `funclatency`-style rendering: one row per populated
    /// bucket with an asterisk bar scaled to the modal bucket.
    pub fn render(&self, label: &str) -> String {
        let mut out = format!("{label}: {} samples", self.count);
        if let Some(m) = self.mean() {
            out.push_str(&format!(
                ", mean {:.0}, min {}, max {}",
                m, self.min, self.max
            ));
        }
        out.push('\n');
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, hi) = Self::bucket_range(i);
            let bar = "*".repeat(((c * 40).div_ceil(peak)) as usize);
            out.push_str(&format!("  [{lo:>12}, {hi:>12}) {c:>8} |{bar}\n"));
        }
        out
    }
}

/// The metrics registry one observer run produces: decision counters,
/// per-CPU switch counts, and the three latency histograms.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SchedMetrics {
    /// Context switches observed (`sched_switch` with `prev != next`).
    pub switches: u64,
    /// Cross-CPU task migrations.
    pub migrations: u64,
    /// Task wakeups.
    pub wakeups: u64,
    /// Fork placements (task created and assigned a CPU).
    pub forks: u64,
    /// Wakeup-preemption checks evaluated.
    pub preempt_checks: u64,
    /// Checks whose verdict preempted the running task.
    pub preempts_granted: u64,
    /// `pick_next`-level decisions (one per `schedule()` entry).
    pub picks: u64,
    /// New-idle balance attempts.
    pub idle_balance_calls: u64,
    /// Periodic (tick-driven) balance attempts.
    pub periodic_balance_calls: u64,
    /// RT overload push attempts.
    pub rt_push_calls: u64,
    /// Timer ticks fully accounted (including batched quiescent ticks).
    pub ticks: u64,
    /// Ticks skipped by tickless operation or batched by quiescence
    /// fast-forward (subset of [`ticks`](Self::ticks)).
    pub ticks_skipped: u64,
    /// Noise-daemon arrivals (daemon task wakeups).
    pub noise_arrivals: u64,
    /// Device interrupts delivered.
    pub irqs: u64,
    /// Cross-node messages captured for the cluster interconnect.
    pub net_sends: u64,
    /// Cross-node message deliveries into this node.
    pub net_delivers: u64,
    /// Batch-level job submissions (cluster scheduler queue arrivals).
    pub job_submits: u64,
    /// Batch-level job starts (queue → allocated → launched).
    pub job_starts: u64,
    /// Batch-level job completions.
    pub job_ends: u64,
    /// Gang-rotation switches (epoch boundaries and gang-set changes).
    pub gang_epochs: u64,
    /// DFRS fractional-share assignments published by the batch layer.
    pub job_shares: u64,
    /// Weighted gang slices started (share table in force).
    pub gang_slices: u64,
    /// User-space coordination lease grants (hpl-coord arbiter).
    pub leases: u64,
    /// Blocked ranks released across all lease grants.
    pub lease_grants: u64,
    /// Switch count per CPU, indexed by CPU id.
    pub per_cpu_switches: Vec<u64>,
    /// How long tasks held a CPU before switching out, in ns.
    pub timeslice_ns: Log2Hist,
    /// Wakeup-to-dispatch latency, in ns.
    pub offcpu_latency_ns: Log2Hist,
    /// Time between successive migrations anywhere on the node, in ns.
    pub migration_interarrival_ns: Log2Hist,
    /// Cross-node message send-to-delivery latency, in ns.
    pub net_latency_ns: Log2Hist,
    /// Portion of message latency spent queued on a contended link, ns.
    pub net_queue_ns: Log2Hist,
    /// Batch queue depth sampled at every submit/start event.
    pub batch_queue_depth: Log2Hist,
    /// Batch job queue wait (submit → start), in ns.
    pub job_wait_ns: Log2Hist,
    /// Weighted slice lengths as scheduled, in ns.
    pub gang_slice_ns: Log2Hist,
    /// Per-gang busy time: one histogram of CPU-occupancy stretch
    /// lengths per gang id, integrated from gang-tagged switch events.
    /// `sum()` of a gang's histogram is its total attributed CPU ns —
    /// the observable that makes a 750/250 share split *measurable*
    /// rather than merely configured.
    pub gang_busy: std::collections::BTreeMap<u64, Log2Hist>,
}

impl SchedMetrics {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bump the switch counter of `cpu`, growing the per-CPU vector on
    /// first sight of a CPU id.
    pub fn count_cpu_switch(&mut self, cpu: usize) {
        if cpu >= self.per_cpu_switches.len() {
            self.per_cpu_switches.resize(cpu + 1, 0);
        }
        self.per_cpu_switches[cpu] += 1;
    }

    /// Fold another registry into this one (bench-harness rep merge).
    pub fn merge(&mut self, other: &SchedMetrics) {
        self.switches += other.switches;
        self.migrations += other.migrations;
        self.wakeups += other.wakeups;
        self.forks += other.forks;
        self.preempt_checks += other.preempt_checks;
        self.preempts_granted += other.preempts_granted;
        self.picks += other.picks;
        self.idle_balance_calls += other.idle_balance_calls;
        self.periodic_balance_calls += other.periodic_balance_calls;
        self.rt_push_calls += other.rt_push_calls;
        self.ticks += other.ticks;
        self.ticks_skipped += other.ticks_skipped;
        self.noise_arrivals += other.noise_arrivals;
        self.irqs += other.irqs;
        self.net_sends += other.net_sends;
        self.net_delivers += other.net_delivers;
        self.job_submits += other.job_submits;
        self.job_starts += other.job_starts;
        self.job_ends += other.job_ends;
        self.gang_epochs += other.gang_epochs;
        self.job_shares += other.job_shares;
        self.gang_slices += other.gang_slices;
        self.leases += other.leases;
        self.lease_grants += other.lease_grants;
        if other.per_cpu_switches.len() > self.per_cpu_switches.len() {
            self.per_cpu_switches
                .resize(other.per_cpu_switches.len(), 0);
        }
        for (s, o) in self
            .per_cpu_switches
            .iter_mut()
            .zip(other.per_cpu_switches.iter())
        {
            *s += o;
        }
        self.timeslice_ns.merge(&other.timeslice_ns);
        self.offcpu_latency_ns.merge(&other.offcpu_latency_ns);
        self.migration_interarrival_ns
            .merge(&other.migration_interarrival_ns);
        self.net_latency_ns.merge(&other.net_latency_ns);
        self.net_queue_ns.merge(&other.net_queue_ns);
        self.batch_queue_depth.merge(&other.batch_queue_depth);
        self.job_wait_ns.merge(&other.job_wait_ns);
        self.gang_slice_ns.merge(&other.gang_slice_ns);
        for (g, h) in &other.gang_busy {
            self.gang_busy.entry(*g).or_default().merge(h);
        }
    }

    /// Total CPU time attributed to `gang`, in ns (0 if never seen).
    pub fn gang_busy_ns(&self, gang: u64) -> u64 {
        self.gang_busy.get(&gang).map_or(0, |h| h.sum())
    }

    /// Compact multi-line report (counters first, then histograms).
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "switches {} | migrations {} | wakeups {} | forks {} | picks {}\n",
            self.switches, self.migrations, self.wakeups, self.forks, self.picks
        ));
        out.push_str(&format!(
            "preempt checks {} (granted {}) | balance idle {} periodic {} rt-push {}\n",
            self.preempt_checks,
            self.preempts_granted,
            self.idle_balance_calls,
            self.periodic_balance_calls,
            self.rt_push_calls
        ));
        out.push_str(&format!(
            "ticks {} (skipped {}) | noise arrivals {} | irqs {}\n",
            self.ticks, self.ticks_skipped, self.noise_arrivals, self.irqs
        ));
        if self.net_sends + self.net_delivers > 0 {
            out.push_str(&format!(
                "net sends {} | net delivers {}\n",
                self.net_sends, self.net_delivers
            ));
        }
        out.push_str(&format!("per-cpu switches {:?}\n", self.per_cpu_switches));
        out.push_str(&self.timeslice_ns.render("timeslice_ns"));
        out.push_str(&self.offcpu_latency_ns.render("offcpu_latency_ns"));
        out.push_str(
            &self
                .migration_interarrival_ns
                .render("migration_interarrival_ns"),
        );
        if self.net_latency_ns.count() > 0 {
            out.push_str(&self.net_latency_ns.render("net_latency_ns"));
            out.push_str(&self.net_queue_ns.render("net_queue_ns"));
        }
        if self.job_submits + self.job_starts + self.job_ends > 0 {
            out.push_str(&format!(
                "job submits {} | starts {} | ends {}\n",
                self.job_submits, self.job_starts, self.job_ends
            ));
            out.push_str(&self.batch_queue_depth.render("batch_queue_depth"));
            out.push_str(&self.job_wait_ns.render("job_wait_ns"));
        }
        if self.gang_epochs + self.job_shares > 0 {
            out.push_str(&format!(
                "gang epochs {} | job shares {}\n",
                self.gang_epochs, self.job_shares
            ));
        }
        if self.gang_slices + self.leases > 0 {
            out.push_str(&format!(
                "gang slices {} | leases {} (ranks released {})\n",
                self.gang_slices, self.leases, self.lease_grants
            ));
        }
        for (g, h) in &self.gang_busy {
            out.push_str(&format!("gang {g} busy {} ns\n", h.sum()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucket_boundaries() {
        let mut h = Log2Hist::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        h.record(u64::MAX);
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // [1,2)
        assert_eq!(h.buckets()[2], 2); // [2,4)
        assert_eq!(h.buckets()[3], 1); // [4,8)
        assert_eq!(h.buckets()[64], 1); // top bucket
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn bucket_range_is_exhaustive() {
        assert_eq!(Log2Hist::bucket_range(0), (0, 1));
        assert_eq!(Log2Hist::bucket_range(1), (1, 2));
        assert_eq!(Log2Hist::bucket_range(10), (512, 1024));
        assert_eq!(Log2Hist::bucket_range(64).0, 1u64 << 63);
        // Every sample lands in the bucket whose range contains it.
        for v in [0u64, 1, 7, 512, 1023, 1 << 40, u64::MAX] {
            let i = Log2Hist::index(v);
            let (lo, hi) = Log2Hist::bucket_range(i);
            assert!(v >= lo && (v < hi || (i == 64 && v == u64::MAX)), "{v}");
        }
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Log2Hist::new();
        let mut b = Log2Hist::new();
        a.record(5);
        b.record(100);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 108);
        assert_eq!(a.min(), Some(3));
        assert_eq!(a.max(), Some(100));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Log2Hist::new();
        a.record(42);
        let before = a.clone();
        a.merge(&Log2Hist::new());
        assert_eq!(a, before);
        let mut e = Log2Hist::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn percentile_monotone() {
        let mut h = Log2Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p10 = h.percentile(10.0).unwrap();
        let p50 = h.percentile(50.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        assert!(p10 <= p50 && p50 <= p99);
        assert!(h.percentile(0.0).is_some());
        assert_eq!(Log2Hist::new().percentile(50.0), None);
    }

    #[test]
    fn metrics_merge_and_percpu_growth() {
        let mut a = SchedMetrics::new();
        a.switches = 10;
        a.count_cpu_switch(1);
        let mut b = SchedMetrics::new();
        b.switches = 5;
        b.migrations = 2;
        b.count_cpu_switch(3);
        b.timeslice_ns.record(4096);
        a.merge(&b);
        assert_eq!(a.switches, 15);
        assert_eq!(a.migrations, 2);
        assert_eq!(a.per_cpu_switches, vec![0, 1, 0, 1]);
        assert_eq!(a.timeslice_ns.count(), 1);
    }

    #[test]
    fn render_mentions_label_and_counts() {
        let mut h = Log2Hist::new();
        h.record(9);
        let s = h.render("slice");
        assert!(s.contains("slice: 1 samples"));
        assert!(s.contains('*'));
        let m = SchedMetrics::new();
        assert!(m.report().contains("switches 0"));
    }
}
