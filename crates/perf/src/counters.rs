//! Dense counter storage.
//!
//! The simulated kernel owns one [`PerCpuCounters`]; every scheduler
//! action bumps the counter on the CPU where it happens, exactly as the
//! real kernel's per-CPU statistics do. Aggregation and snapshot-diffing
//! (for `perf stat`-style windows) happen at read time.

use crate::event::{HwEvent, SwEvent};
use hpl_topology::CpuId;

/// A flat set of all counters (software + hardware).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    sw: [u64; SwEvent::ALL.len()],
    hw: [u64; HwEvent::ALL.len()],
}

impl CounterSet {
    /// All-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment a software event by `n`.
    #[inline]
    pub fn add_sw(&mut self, e: SwEvent, n: u64) {
        self.sw[e.index()] += n;
    }

    /// Increment a hardware event by `n`.
    #[inline]
    pub fn add_hw(&mut self, e: HwEvent, n: u64) {
        self.hw[e.index()] += n;
    }

    /// Read a software counter.
    #[inline]
    pub fn sw(&self, e: SwEvent) -> u64 {
        self.sw[e.index()]
    }

    /// Read a hardware counter.
    #[inline]
    pub fn hw(&self, e: HwEvent) -> u64 {
        self.hw[e.index()]
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &CounterSet) {
        for i in 0..self.sw.len() {
            self.sw[i] += other.sw[i];
        }
        for i in 0..self.hw.len() {
            self.hw[i] += other.hw[i];
        }
    }

    /// Element-wise difference (`self - earlier`); counters are monotonic
    /// so the subtraction cannot underflow in correct use (checked in
    /// debug builds).
    pub fn delta_since(&self, earlier: &CounterSet) -> CounterSet {
        let mut out = CounterSet::new();
        for i in 0..self.sw.len() {
            debug_assert!(self.sw[i] >= earlier.sw[i], "sw counter went backwards");
            out.sw[i] = self.sw[i].saturating_sub(earlier.sw[i]);
        }
        for i in 0..self.hw.len() {
            debug_assert!(self.hw[i] >= earlier.hw[i], "hw counter went backwards");
            out.hw[i] = self.hw[i].saturating_sub(earlier.hw[i]);
        }
        out
    }
}

/// One [`CounterSet`] per CPU plus helpers for aggregation.
#[derive(Debug, Clone)]
pub struct PerCpuCounters {
    cpus: Vec<CounterSet>,
}

impl PerCpuCounters {
    /// Create counters for `n` CPUs.
    pub fn new(n: usize) -> Self {
        PerCpuCounters {
            cpus: vec![CounterSet::new(); n],
        }
    }

    /// Number of CPUs.
    pub fn len(&self) -> usize {
        self.cpus.len()
    }

    /// True iff there are no CPUs (never in practice).
    pub fn is_empty(&self) -> bool {
        self.cpus.is_empty()
    }

    /// The counter set of one CPU.
    #[inline]
    pub fn cpu(&self, cpu: CpuId) -> &CounterSet {
        &self.cpus[cpu.index()]
    }

    /// Mutable counter set of one CPU.
    #[inline]
    pub fn cpu_mut(&mut self, cpu: CpuId) -> &mut CounterSet {
        &mut self.cpus[cpu.index()]
    }

    /// Increment a software event on `cpu`.
    #[inline]
    pub fn add_sw(&mut self, cpu: CpuId, e: SwEvent, n: u64) {
        self.cpus[cpu.index()].add_sw(e, n);
    }

    /// Increment a hardware event on `cpu`.
    #[inline]
    pub fn add_hw(&mut self, cpu: CpuId, e: HwEvent, n: u64) {
        self.cpus[cpu.index()].add_hw(e, n);
    }

    /// System-wide totals.
    pub fn total(&self) -> CounterSet {
        let mut out = CounterSet::new();
        for c in &self.cpus {
            out.merge(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read() {
        let mut c = CounterSet::new();
        c.add_sw(SwEvent::ContextSwitches, 3);
        c.add_sw(SwEvent::ContextSwitches, 2);
        c.add_hw(HwEvent::BusyNs, 100);
        assert_eq!(c.sw(SwEvent::ContextSwitches), 5);
        assert_eq!(c.sw(SwEvent::CpuMigrations), 0);
        assert_eq!(c.hw(HwEvent::BusyNs), 100);
    }

    #[test]
    fn merge_sums() {
        let mut a = CounterSet::new();
        a.add_sw(SwEvent::Forks, 1);
        let mut b = CounterSet::new();
        b.add_sw(SwEvent::Forks, 2);
        b.add_hw(HwEvent::TickOverheadNs, 7);
        a.merge(&b);
        assert_eq!(a.sw(SwEvent::Forks), 3);
        assert_eq!(a.hw(HwEvent::TickOverheadNs), 7);
    }

    #[test]
    fn delta_since() {
        let mut early = CounterSet::new();
        early.add_sw(SwEvent::Wakeups, 10);
        let mut late = early.clone();
        late.add_sw(SwEvent::Wakeups, 5);
        late.add_hw(HwEvent::BusyNs, 42);
        let d = late.delta_since(&early);
        assert_eq!(d.sw(SwEvent::Wakeups), 5);
        assert_eq!(d.hw(HwEvent::BusyNs), 42);
    }

    #[test]
    fn per_cpu_totals() {
        let mut p = PerCpuCounters::new(4);
        p.add_sw(CpuId(0), SwEvent::TimerTicks, 2);
        p.add_sw(CpuId(3), SwEvent::TimerTicks, 3);
        p.add_hw(CpuId(1), HwEvent::SmtContentionNs, 9);
        assert_eq!(p.total().sw(SwEvent::TimerTicks), 5);
        assert_eq!(p.total().hw(HwEvent::SmtContentionNs), 9);
        assert_eq!(p.cpu(CpuId(0)).sw(SwEvent::TimerTicks), 2);
        assert_eq!(p.len(), 4);
    }
}
