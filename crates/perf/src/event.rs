//! Event taxonomy.
//!
//! Software events mirror the Linux `perf` software counters the paper
//! reads (`context-switches`, `cpu-migrations`) plus the extra scheduler
//! activity the study discusses (preemption kinds, balance attempts,
//! ticks). Hardware events are the simulator's stand-ins for what real
//! PMU counters would show: time lost to cold caches after a migration or
//! eviction, and to SMT contention — the paper's "indirect overhead".

use std::fmt;

/// Software (kernel-side) events, counted exactly where the simulated
/// kernel performs the action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwEvent {
    /// `schedule()` switched from one task to a different one (including
    /// switches to the idle task) — Linux's `nr_switches`, what
    /// `perf stat -e context-switches` reports system-wide.
    ContextSwitches,
    /// A task began running on a different CPU than it last ran on —
    /// `perf stat -e cpu-migrations`.
    CpuMigrations,
    /// A running task was preempted by a higher-priority or fairer task
    /// (involuntary). Subset of `ContextSwitches`.
    InvoluntaryPreemptions,
    /// A running task blocked or yielded (voluntary). Subset of
    /// `ContextSwitches`.
    VoluntarySwitches,
    /// Load-balancer invocations (periodic + idle), whether or not any
    /// task moved — the "direct overhead" the paper charges to balancing.
    LoadBalanceCalls,
    /// Tasks actually moved by the load balancer (subset of
    /// `CpuMigrations`; the rest are fork/exec/wakeup placements).
    LoadBalanceMigrations,
    /// Timer tick interrupts handled.
    TimerTicks,
    /// `fork()` calls.
    Forks,
    /// Task wakeups.
    Wakeups,
    /// Device interrupts handled (modelled NIC/storage IRQs).
    Irqs,
}

/// Simulated hardware events: cycle-level costs the execution model
/// attributes to scheduler decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HwEvent {
    /// Nanoseconds of task execution (busy time across all CPUs).
    BusyNs,
    /// Nanoseconds lost to reduced speed while a task's working set
    /// rewarms after a migration or an eviction by another task.
    ColdCacheStallNs,
    /// Nanoseconds lost to SMT sibling contention.
    SmtContentionNs,
    /// Nanoseconds spent executing context-switch machinery.
    CtxSwitchOverheadNs,
    /// Nanoseconds spent in the timer-tick handler (micro-noise).
    TickOverheadNs,
    /// Nanoseconds spent in device-interrupt handlers.
    IrqOverheadNs,
}

/// Any counted event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// Software event.
    Sw(SwEvent),
    /// Simulated hardware event.
    Hw(HwEvent),
}

impl SwEvent {
    /// All software events, in display order.
    pub const ALL: [SwEvent; 10] = [
        SwEvent::ContextSwitches,
        SwEvent::CpuMigrations,
        SwEvent::InvoluntaryPreemptions,
        SwEvent::VoluntarySwitches,
        SwEvent::LoadBalanceCalls,
        SwEvent::LoadBalanceMigrations,
        SwEvent::TimerTicks,
        SwEvent::Forks,
        SwEvent::Wakeups,
        SwEvent::Irqs,
    ];

    /// Dense index for counter arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            SwEvent::ContextSwitches => 0,
            SwEvent::CpuMigrations => 1,
            SwEvent::InvoluntaryPreemptions => 2,
            SwEvent::VoluntarySwitches => 3,
            SwEvent::LoadBalanceCalls => 4,
            SwEvent::LoadBalanceMigrations => 5,
            SwEvent::TimerTicks => 6,
            SwEvent::Forks => 7,
            SwEvent::Wakeups => 8,
            SwEvent::Irqs => 9,
        }
    }

    /// `perf`-style event name.
    pub const fn name(self) -> &'static str {
        match self {
            SwEvent::ContextSwitches => "context-switches",
            SwEvent::CpuMigrations => "cpu-migrations",
            SwEvent::InvoluntaryPreemptions => "involuntary-preemptions",
            SwEvent::VoluntarySwitches => "voluntary-switches",
            SwEvent::LoadBalanceCalls => "load-balance-calls",
            SwEvent::LoadBalanceMigrations => "load-balance-migrations",
            SwEvent::TimerTicks => "timer-ticks",
            SwEvent::Forks => "forks",
            SwEvent::Wakeups => "wakeups",
            SwEvent::Irqs => "irqs",
        }
    }
}

impl HwEvent {
    /// All hardware events, in display order.
    pub const ALL: [HwEvent; 6] = [
        HwEvent::BusyNs,
        HwEvent::ColdCacheStallNs,
        HwEvent::SmtContentionNs,
        HwEvent::CtxSwitchOverheadNs,
        HwEvent::TickOverheadNs,
        HwEvent::IrqOverheadNs,
    ];

    /// Dense index for counter arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            HwEvent::BusyNs => 0,
            HwEvent::ColdCacheStallNs => 1,
            HwEvent::SmtContentionNs => 2,
            HwEvent::CtxSwitchOverheadNs => 3,
            HwEvent::TickOverheadNs => 4,
            HwEvent::IrqOverheadNs => 5,
        }
    }

    /// Event name for reports.
    pub const fn name(self) -> &'static str {
        match self {
            HwEvent::BusyNs => "busy-ns",
            HwEvent::ColdCacheStallNs => "cold-cache-stall-ns",
            HwEvent::SmtContentionNs => "smt-contention-ns",
            HwEvent::CtxSwitchOverheadNs => "ctx-switch-overhead-ns",
            HwEvent::TickOverheadNs => "tick-overhead-ns",
            HwEvent::IrqOverheadNs => "irq-overhead-ns",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Sw(e) => write!(f, "{}", e.name()),
            Event::Hw(e) => write!(f, "{}", e.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sw_indices_are_dense_and_unique() {
        let mut seen = vec![false; SwEvent::ALL.len()];
        for e in SwEvent::ALL {
            assert!(!seen[e.index()], "duplicate index for {e:?}");
            seen[e.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hw_indices_are_dense_and_unique() {
        let mut seen = vec![false; HwEvent::ALL.len()];
        for e in HwEvent::ALL {
            assert!(!seen[e.index()], "duplicate index for {e:?}");
            seen[e.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn names_match_perf_convention() {
        assert_eq!(SwEvent::ContextSwitches.name(), "context-switches");
        assert_eq!(SwEvent::CpuMigrations.name(), "cpu-migrations");
        assert_eq!(format!("{}", Event::Sw(SwEvent::Forks)), "forks");
        assert_eq!(format!("{}", Event::Hw(HwEvent::BusyNs)), "busy-ns");
    }
}
