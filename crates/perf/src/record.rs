//! Per-run records and tables.
//!
//! Each repetition of a benchmark yields one [`RunRecord`] — the tuple the
//! paper's analysis works with: execution time, CPU migrations, context
//! switches (Figures 2-4 plot distributions of these, Tables I/II report
//! min/avg/max over 1000 repetitions). [`RunTable`] aggregates a set of
//! records into exactly the paper's table columns.

use crate::counters::CounterSet;
use crate::event::SwEvent;
use crate::metrics::SchedMetrics;
use hpl_sim::stats::{pearson, spearman, Summary};

/// How a measured run terminated.
///
/// The kernel's `run_until_exit` reports one of these instead of
/// panicking, so the harness can record a failed repetition and keep
/// aggregating instead of tearing the whole sweep down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[must_use = "a run that did not complete usually invalidates the measurement"]
pub enum RunOutcome {
    /// The awaited task exited; the measurement window is valid.
    Completed,
    /// The event queue drained with the awaited task still alive —
    /// a lost wakeup or blocked dependency in the simulated workload.
    Deadlock,
    /// The event budget was exhausted before the task exited (hang
    /// guard tripped).
    BudgetExhausted,
}

impl RunOutcome {
    /// True iff the run finished normally.
    pub fn is_complete(self) -> bool {
        matches!(self, RunOutcome::Completed)
    }

    /// Stable lowercase label for reports/CSV.
    pub fn label(self) -> &'static str {
        match self {
            RunOutcome::Completed => "completed",
            RunOutcome::Deadlock => "deadlock",
            RunOutcome::BudgetExhausted => "budget_exhausted",
        }
    }

    /// Parse a [`Self::label`] back into the outcome (CSV ingestion).
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "completed" => Some(RunOutcome::Completed),
            "deadlock" => Some(RunOutcome::Deadlock),
            "budget_exhausted" => Some(RunOutcome::BudgetExhausted),
            _ => None,
        }
    }
}

/// The measurements of one benchmark repetition.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Repetition index (seed derivation input).
    pub run: u64,
    /// Application execution time in seconds (mpiexec start → exit).
    pub exec_time_s: f64,
    /// System-wide CPU migrations over the perf window.
    pub cpu_migrations: u64,
    /// System-wide context switches over the perf window.
    pub context_switches: u64,
    /// Involuntary preemptions over the window.
    pub involuntary_preemptions: u64,
    /// Load-balancer invocations over the window.
    pub load_balance_calls: u64,
    /// How the run terminated (anything but [`RunOutcome::Completed`]
    /// taints the record).
    pub outcome: RunOutcome,
    /// Observer-collected scheduler metrics, when the harness ran with
    /// metrics collection enabled.
    pub metrics: Option<SchedMetrics>,
}

impl RunRecord {
    /// Build a record from a closed perf-window delta (outcome
    /// defaults to [`RunOutcome::Completed`]; see
    /// [`with_outcome`](Self::with_outcome)).
    pub fn from_delta(run: u64, exec_time_s: f64, d: &CounterSet) -> Self {
        RunRecord {
            run,
            exec_time_s,
            cpu_migrations: d.sw(SwEvent::CpuMigrations),
            context_switches: d.sw(SwEvent::ContextSwitches),
            involuntary_preemptions: d.sw(SwEvent::InvoluntaryPreemptions),
            load_balance_calls: d.sw(SwEvent::LoadBalanceCalls),
            outcome: RunOutcome::Completed,
            metrics: None,
        }
    }

    /// Set the termination outcome.
    pub fn with_outcome(mut self, outcome: RunOutcome) -> Self {
        self.outcome = outcome;
        self
    }

    /// Attach an observer-collected metrics registry.
    pub fn with_metrics(mut self, metrics: SchedMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }
}

/// Aggregation of many runs of one benchmark configuration.
#[derive(Debug, Clone)]
pub struct RunTable {
    records: Vec<RunRecord>,
}

impl RunTable {
    /// Wrap a set of records (order irrelevant).
    pub fn new(records: Vec<RunRecord>) -> Self {
        RunTable { records }
    }

    /// The underlying records.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Number of repetitions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff no repetitions were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Execution-time summary (Table II columns).
    pub fn time_summary(&self) -> Summary {
        Summary::from_slice(&self.times())
    }

    /// Migration-count summary (Table I columns).
    pub fn migration_summary(&self) -> Summary {
        Summary::from_slice(&self.migrations_f64())
    }

    /// Context-switch summary (Table I columns).
    pub fn switch_summary(&self) -> Summary {
        Summary::from_slice(&self.switches_f64())
    }

    /// Execution times as a vector (Figures 2/4 input).
    pub fn times(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.exec_time_s).collect()
    }

    /// Migration counts as floats (Fig. 3a x-axis).
    pub fn migrations_f64(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.cpu_migrations as f64)
            .collect()
    }

    /// Context-switch counts as floats (Fig. 3b x-axis).
    pub fn switches_f64(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.context_switches as f64)
            .collect()
    }

    /// Pearson correlation of time against migrations (Fig. 3a).
    pub fn time_migration_correlation(&self) -> f64 {
        pearson(&self.migrations_f64(), &self.times())
    }

    /// Pearson correlation of time against context switches (Fig. 3b).
    pub fn time_switch_correlation(&self) -> f64 {
        pearson(&self.switches_f64(), &self.times())
    }

    /// Spearman (rank) correlation of time against migrations — more
    /// robust to the heavy tails these distributions have.
    pub fn time_migration_rank_correlation(&self) -> f64 {
        spearman(&self.migrations_f64(), &self.times())
    }

    /// Full raw table as CSV (one row per repetition) — what a paper's
    /// artifact-evaluation appendix would archive.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "run,exec_time_s,cpu_migrations,context_switches,involuntary_preemptions,load_balance_calls,outcome\n",
        );
        for r in &self.records {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                r.run,
                r.exec_time_s,
                r.cpu_migrations,
                r.context_switches,
                r.involuntary_preemptions,
                r.load_balance_calls,
                r.outcome.label()
            ));
        }
        out
    }

    /// Parse a table back from [`Self::to_csv`] output. Strict on shape:
    /// the header must match what `to_csv` writes and every row must
    /// carry exactly its columns (observer metrics are not serialised,
    /// so they come back as `None`).
    pub fn from_csv(csv: &str) -> Result<Self, String> {
        let mut lines = csv.lines();
        let header = lines.next().ok_or("empty CSV")?;
        let expected = "run,exec_time_s,cpu_migrations,context_switches,involuntary_preemptions,load_balance_calls,outcome";
        if header != expected {
            return Err(format!("unexpected header {header:?}"));
        }
        let mut records = Vec::new();
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 7 {
                return Err(format!("row {i}: expected 7 fields, got {}", fields.len()));
            }
            let num = |j: usize| -> Result<u64, String> {
                fields[j]
                    .parse()
                    .map_err(|_| format!("row {i}: bad integer {:?}", fields[j]))
            };
            records.push(RunRecord {
                run: num(0)?,
                exec_time_s: fields[1]
                    .parse()
                    .map_err(|_| format!("row {i}: bad time {:?}", fields[1]))?,
                cpu_migrations: num(2)?,
                context_switches: num(3)?,
                involuntary_preemptions: num(4)?,
                load_balance_calls: num(5)?,
                outcome: RunOutcome::parse(fields[6])
                    .ok_or_else(|| format!("row {i}: unknown outcome {:?}", fields[6]))?,
                metrics: None,
            });
        }
        Ok(RunTable::new(records))
    }

    /// True iff every repetition completed normally.
    pub fn all_completed(&self) -> bool {
        self.records.iter().all(|r| r.outcome.is_complete())
    }

    /// Records that did not complete (deadlocked or over budget).
    pub fn failed_records(&self) -> Vec<&RunRecord> {
        self.records
            .iter()
            .filter(|r| !r.outcome.is_complete())
            .collect()
    }

    /// Merge the observer metrics of every repetition that collected
    /// them; `None` when no record carries a registry.
    pub fn merged_metrics(&self) -> Option<SchedMetrics> {
        let mut acc: Option<SchedMetrics> = None;
        for m in self.records.iter().filter_map(|r| r.metrics.as_ref()) {
            acc.get_or_insert_with(SchedMetrics::new).merge(m);
        }
        acc
    }

    /// Execution-time percentile (`q` in 0..=100).
    pub fn time_percentile(&self, q: f64) -> f64 {
        hpl_sim::stats::percentile(&self.times(), q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(run: u64, t: f64, mig: u64, cs: u64) -> RunRecord {
        RunRecord {
            run,
            exec_time_s: t,
            cpu_migrations: mig,
            context_switches: cs,
            involuntary_preemptions: 0,
            load_balance_calls: 0,
            outcome: RunOutcome::Completed,
            metrics: None,
        }
    }

    #[test]
    fn from_delta_extracts_counters() {
        let mut d = CounterSet::new();
        d.add_sw(SwEvent::CpuMigrations, 52);
        d.add_sw(SwEvent::ContextSwitches, 650);
        let r = RunRecord::from_delta(3, 8.54, &d);
        assert_eq!(r.run, 3);
        assert_eq!(r.cpu_migrations, 52);
        assert_eq!(r.context_switches, 650);
        assert!((r.exec_time_s - 8.54).abs() < 1e-12);
    }

    #[test]
    fn summaries_match_paper_columns() {
        let t = RunTable::new(vec![
            rec(0, 8.54, 29, 550),
            rec(1, 14.59, 615, 1886),
            rec(2, 9.0, 50, 652),
        ]);
        let ts = t.time_summary();
        assert_eq!(ts.min(), 8.54);
        assert_eq!(ts.max(), 14.59);
        let ms = t.migration_summary();
        assert_eq!(ms.min(), 29.0);
        assert_eq!(ms.max(), 615.0);
        let cs = t.switch_summary();
        assert_eq!(cs.max(), 1886.0);
    }

    #[test]
    fn positive_correlation_detected() {
        // Time grows with migrations: Fig. 3a's empirical relationship.
        let recs: Vec<RunRecord> = (0..50)
            .map(|i| rec(i, 8.5 + 0.01 * i as f64, 30 + i * 10, 500 + i * 20))
            .collect();
        let t = RunTable::new(recs);
        assert!(t.time_migration_correlation() > 0.99);
        assert!(t.time_switch_correlation() > 0.99);
        assert!(t.time_migration_rank_correlation() > 0.99);
    }

    #[test]
    fn csv_roundtrip_columns() {
        let t = RunTable::new(vec![rec(0, 1.5, 10, 100)]);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "run,exec_time_s,cpu_migrations,context_switches,involuntary_preemptions,load_balance_calls,outcome"
        );
        assert_eq!(lines.next().unwrap(), "0,1.5,10,100,0,0,completed");
    }

    #[test]
    fn outcome_labels_roundtrip() {
        for o in [
            RunOutcome::Completed,
            RunOutcome::Deadlock,
            RunOutcome::BudgetExhausted,
        ] {
            assert_eq!(RunOutcome::parse(o.label()), Some(o));
        }
        assert_eq!(RunOutcome::parse("crashed"), None);
    }

    #[test]
    fn outcome_parse_rejects_garbage() {
        // Regression: parse must return None for anything that is not a
        // verbatim label — never panic, never guess. Fuzz-ish battery of
        // the shapes that show up in hand-edited or truncated CSVs.
        for garbage in [
            "",
            " ",
            "completed ",
            " completed",
            "Completed",
            "COMPLETED",
            "complete",
            "completedd",
            "dead lock",
            "deadlock\n",
            "budget-exhausted",
            "budget_exhausted2",
            "budget",
            "0",
            "✓",
            "complet\u{00e9}d",
            "completed\0",
            "\0",
            "null",
            "none",
            "ok",
        ] {
            assert_eq!(
                RunOutcome::parse(garbage),
                None,
                "garbage label {garbage:?} must not parse"
            );
        }
        // And a whole CSV row carrying a garbage outcome errors cleanly.
        let bad = "run,exec_time_s,cpu_migrations,context_switches,involuntary_preemptions,load_balance_calls,outcome\n0,1.0,0,0,0,0,completed \n";
        let err = RunTable::from_csv(bad).unwrap_err();
        assert!(err.contains("unknown outcome"), "got {err:?}");
    }

    #[test]
    fn csv_roundtrips_outcomes_through_table() {
        let t = RunTable::new(vec![
            rec(0, 8.54, 29, 550),
            rec(1, 14.59, 615, 1886).with_outcome(RunOutcome::Deadlock),
            rec(2, 9.0, 50, 652).with_outcome(RunOutcome::BudgetExhausted),
        ]);
        let parsed = RunTable::from_csv(&t.to_csv()).expect("round-trip");
        assert_eq!(parsed.records(), t.records());
        assert_eq!(parsed.failed_records().len(), 2);
        // Malformed inputs are rejected, not mangled.
        assert!(RunTable::from_csv("").is_err());
        assert!(RunTable::from_csv("wrong,header\n").is_err());
        let bad_outcome = "run,exec_time_s,cpu_migrations,context_switches,involuntary_preemptions,load_balance_calls,outcome\n0,1.0,0,0,0,0,crashed\n";
        assert!(RunTable::from_csv(bad_outcome).is_err());
    }

    #[test]
    fn outcome_taints_table() {
        let ok = RunTable::new(vec![rec(0, 1.0, 0, 0)]);
        assert!(ok.all_completed());
        assert!(ok.failed_records().is_empty());
        let bad = RunTable::new(vec![
            rec(0, 1.0, 0, 0),
            rec(1, 0.5, 0, 0).with_outcome(RunOutcome::Deadlock),
        ]);
        assert!(!bad.all_completed());
        assert_eq!(bad.failed_records().len(), 1);
        assert!(bad.to_csv().contains("deadlock"));
    }

    #[test]
    fn merged_metrics_across_reps() {
        use crate::metrics::SchedMetrics;
        let t = RunTable::new(vec![rec(0, 1.0, 0, 0)]);
        assert!(t.merged_metrics().is_none());
        let mut m0 = SchedMetrics::new();
        m0.switches = 3;
        let mut m1 = SchedMetrics::new();
        m1.switches = 4;
        m1.timeslice_ns.record(100);
        let t = RunTable::new(vec![
            rec(0, 1.0, 0, 0).with_metrics(m0),
            rec(1, 1.1, 0, 0).with_metrics(m1),
        ]);
        let merged = t.merged_metrics().unwrap();
        assert_eq!(merged.switches, 7);
        assert_eq!(merged.timeslice_ns.count(), 1);
    }

    #[test]
    fn percentiles_bound_by_extremes() {
        let t = RunTable::new(vec![
            rec(0, 1.0, 0, 0),
            rec(1, 2.0, 0, 0),
            rec(2, 9.0, 0, 0),
        ]);
        assert_eq!(t.time_percentile(0.0), 1.0);
        assert_eq!(t.time_percentile(100.0), 9.0);
        assert!((t.time_percentile(50.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_table() {
        let t = RunTable::new(vec![]);
        assert!(t.is_empty());
        assert!(t.time_summary().mean().is_nan());
    }
}
