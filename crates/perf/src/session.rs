//! `perf stat`-style measurement windows.
//!
//! The paper runs `perf` system-wide around each benchmark execution: the
//! window opens before `mpiexec` starts and closes after it exits, so the
//! launcher's own scheduler activity is *included* in the reported counts
//! (which is why Table Ib's migration floor is ~10, not 8). A
//! [`PerfSession`] reproduces that: snapshot at open, snapshot at close,
//! report the delta.

use crate::counters::{CounterSet, PerCpuCounters};
use crate::event::{HwEvent, SwEvent};
use hpl_sim::SimTime;
use std::fmt::Write as _;

/// A system-wide measurement window over the kernel's counters.
#[derive(Debug, Clone)]
pub struct PerfSession {
    open_snapshot: CounterSet,
    opened_at: SimTime,
    closed: Option<(CounterSet, SimTime)>,
}

impl PerfSession {
    /// Open a window: snapshots current totals.
    pub fn open(counters: &PerCpuCounters, now: SimTime) -> Self {
        PerfSession {
            open_snapshot: counters.total(),
            opened_at: now,
            closed: None,
        }
    }

    /// Close the window.
    pub fn close(&mut self, counters: &PerCpuCounters, now: SimTime) {
        debug_assert!(self.closed.is_none(), "PerfSession closed twice");
        self.closed = Some((counters.total(), now));
    }

    /// Counter deltas over the window. Panics if the session is still open.
    pub fn delta(&self) -> CounterSet {
        let (end, _) = self
            .closed
            .as_ref()
            .expect("PerfSession::delta before close");
        end.delta_since(&self.open_snapshot)
    }

    /// Wall-clock length of the window in simulated seconds.
    pub fn elapsed_secs(&self) -> f64 {
        let (_, end) = self
            .closed
            .as_ref()
            .expect("PerfSession::elapsed_secs before close");
        end.since(self.opened_at).as_secs_f64()
    }

    /// Render a `perf stat`-style report.
    pub fn report(&self) -> String {
        let d = self.delta();
        let mut out = String::new();
        let _ = writeln!(out, " Performance counter stats (system wide):\n");
        for e in SwEvent::ALL {
            let _ = writeln!(out, "  {:>12}   {}", d.sw(e), e.name());
        }
        let _ = writeln!(out);
        for e in HwEvent::ALL {
            let _ = writeln!(out, "  {:>12}   {}", d.hw(e), e.name());
        }
        let _ = writeln!(out, "\n  {:.6} seconds time elapsed", self.elapsed_secs());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_sim::SimDuration;
    use hpl_topology::CpuId;

    #[test]
    fn window_deltas() {
        let mut pc = PerCpuCounters::new(2);
        pc.add_sw(CpuId(0), SwEvent::ContextSwitches, 100);
        let mut s = PerfSession::open(&pc, SimTime::ZERO);
        pc.add_sw(CpuId(0), SwEvent::ContextSwitches, 7);
        pc.add_sw(CpuId(1), SwEvent::CpuMigrations, 3);
        s.close(&pc, SimTime::ZERO + SimDuration::from_secs(2));
        let d = s.delta();
        assert_eq!(d.sw(SwEvent::ContextSwitches), 7);
        assert_eq!(d.sw(SwEvent::CpuMigrations), 3);
        assert!((s.elapsed_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn report_contains_events() {
        let mut pc = PerCpuCounters::new(1);
        let mut s = PerfSession::open(&pc, SimTime::ZERO);
        pc.add_sw(CpuId(0), SwEvent::Forks, 9);
        s.close(&pc, SimTime::ZERO + SimDuration::from_millis(1));
        let r = s.report();
        assert!(r.contains("context-switches"));
        assert!(r.contains("cpu-migrations"));
        assert!(r.contains("seconds time elapsed"));
        assert!(r.contains('9'));
    }

    #[test]
    #[should_panic]
    fn delta_before_close_panics() {
        let pc = PerCpuCounters::new(1);
        let s = PerfSession::open(&pc, SimTime::ZERO);
        let _ = s.delta();
    }
}
