//! Property tests for the perf metrics primitives.

use hpl_perf::Log2Hist;
use proptest::prelude::*;

proptest! {
    /// Bucket ranges tile the u64 axis: each bucket's hi is the next
    /// bucket's lo, lo < hi everywhere, and every recorded sample lands
    /// in the one bucket whose range contains it.
    #[test]
    fn log2hist_bucket_monotonicity(vs in proptest::collection::vec(0u64..u64::MAX, 1..200)) {
        for i in 0..64 {
            let (lo, hi) = Log2Hist::bucket_range(i);
            let (next_lo, _) = Log2Hist::bucket_range(i + 1);
            prop_assert!(lo < hi, "bucket {} empty: [{}, {})", i, lo, hi);
            prop_assert_eq!(hi, next_lo, "gap between buckets {} and {}", i, i + 1);
        }
        let mut h = Log2Hist::new();
        for &v in &vs {
            h.record(v);
        }
        prop_assert_eq!(h.count(), vs.len() as u64);
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), vs.len() as u64);
        for (i, &c) in h.buckets().iter().enumerate() {
            let (lo, hi) = Log2Hist::bucket_range(i);
            let expect = vs
                .iter()
                .filter(|&&v| v >= lo && (v < hi || (i == 64 && v == u64::MAX)))
                .count() as u64;
            prop_assert_eq!(c, expect, "bucket {} [{}, {})", i, lo, hi);
        }
    }

    /// Merging two histograms is identical to recording the
    /// concatenation of their samples, for every split point.
    #[test]
    fn log2hist_merge_equals_sum(
        vs in proptest::collection::vec(0u64..u64::MAX / 2, 0..200),
        split in 0usize..200
    ) {
        let split = split.min(vs.len());
        let mut bulk = Log2Hist::new();
        for &v in &vs {
            bulk.record(v);
        }
        let mut a = Log2Hist::new();
        for &v in &vs[..split] {
            a.record(v);
        }
        let mut b = Log2Hist::new();
        for &v in &vs[split..] {
            b.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(&a, &bulk);
    }

    /// Percentiles are monotone in q, bounded by the true extremes'
    /// bucket ranges, and the estimate for any q stays within
    /// [min's bucket lo, max's bucket hi).
    #[test]
    fn log2hist_percentile_bounded(
        vs in proptest::collection::vec(0u64..1_000_000_000, 1..100),
        q1 in 0.0f64..100.0,
        q2 in 0.0f64..100.0
    ) {
        let mut h = Log2Hist::new();
        for &v in &vs {
            h.record(v);
        }
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let plo = h.percentile(lo).unwrap();
        let phi = h.percentile(hi).unwrap();
        prop_assert!(plo <= phi, "percentile not monotone: p{}={} > p{}={}", lo, plo, hi, phi);
        let vmin = *vs.iter().min().unwrap();
        let vmax = *vs.iter().max().unwrap();
        let (bucket_lo, _) = Log2Hist::bucket_range(vmin.checked_ilog2().map_or(0, |l| l as usize + 1));
        let (_, bucket_hi) = Log2Hist::bucket_range(vmax.checked_ilog2().map_or(0, |l| l as usize + 1));
        prop_assert!(plo >= bucket_lo && phi <= bucket_hi);
    }
}

/// An empty histogram reports empty everything.
#[test]
fn log2hist_empty() {
    let h = Log2Hist::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.min(), None);
    assert_eq!(h.max(), None);
    assert_eq!(h.mean(), None);
    assert_eq!(h.percentile(50.0), None);
}
